package repl

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

// fakeSystem is a single in-memory map posing as an N-replica system,
// with injectable divergence and abort behaviour for driver tests.
type fakeSystem struct {
	mu       sync.Mutex
	tables   map[string]map[int64]string
	replicas int
	// abortEvery makes every k-th update commit fail once with
	// ErrAborted (0 = never).
	abortEvery int
	updates    int
	// divergeReplica, if >= 0, corrupts TableDump output for that
	// replica so CheckConvergence must notice.
	divergeReplica int
	divergeMode    string // "value" or "missing"
}

func newFake(replicas int) *fakeSystem {
	return &fakeSystem{
		tables:         map[string]map[int64]string{},
		replicas:       replicas,
		divergeReplica: -1,
	}
}

func (f *fakeSystem) CreateTable(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.tables[name]; ok {
		return fmt.Errorf("fake: table %q exists", name)
	}
	f.tables[name] = map[int64]string{}
	return nil
}

func (f *fakeSystem) Load(table string, rows int, value func(int64) string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.tables[table]
	if !ok {
		return fmt.Errorf("fake: no table %q", table)
	}
	for i := int64(0); i < int64(rows); i++ {
		t[i] = value(i)
	}
	return nil
}

type fakeTxn struct {
	sys      *fakeSystem
	readOnly bool
	writes   []struct {
		table string
		row   int64
		val   string
	}
	done bool
}

func (f *fakeSystem) BeginRead() (Txn, error)   { return &fakeTxn{sys: f, readOnly: true}, nil }
func (f *fakeSystem) BeginUpdate() (Txn, error) { return &fakeTxn{sys: f}, nil }
func (f *fakeSystem) Sync()                     {}
func (f *fakeSystem) Replicas() int             { return f.replicas }

func (f *fakeSystem) TableDump(replica int, table string) (map[int64]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.tables[table]
	if !ok {
		return nil, fmt.Errorf("fake: no table %q", table)
	}
	out := make(map[int64]string, len(t))
	for k, v := range t {
		out[k] = v
	}
	if replica == f.divergeReplica && len(out) > 0 {
		for k := range out {
			switch f.divergeMode {
			case "missing":
				delete(out, k)
			default:
				out[k] = "CORRUPT"
			}
			break
		}
	}
	return out, nil
}

func (t *fakeTxn) Read(table string, row int64) (string, bool, error) {
	t.sys.mu.Lock()
	defer t.sys.mu.Unlock()
	tab, ok := t.sys.tables[table]
	if !ok {
		return "", false, fmt.Errorf("fake: no table %q", table)
	}
	v, ok := tab[row]
	return v, ok, nil
}

func (t *fakeTxn) Write(table string, row int64, value string) error {
	if t.readOnly {
		return ErrReadOnlyTxn
	}
	t.writes = append(t.writes, struct {
		table string
		row   int64
		val   string
	}{table, row, value})
	return nil
}

func (t *fakeTxn) Delete(table string, row int64) error {
	return t.Write(table, row, "")
}

func (t *fakeTxn) Commit() error {
	if t.done {
		return errors.New("fake: txn done")
	}
	t.done = true
	t.sys.mu.Lock()
	defer t.sys.mu.Unlock()
	if len(t.writes) > 0 {
		t.sys.updates++
		if t.sys.abortEvery > 0 && t.sys.updates%t.sys.abortEvery == 0 {
			return fmt.Errorf("%w: injected", ErrAborted)
		}
	}
	for _, w := range t.writes {
		if tab, ok := t.sys.tables[w.table]; ok {
			tab[w.row] = w.val
		}
	}
	return nil
}

func (t *fakeTxn) Abort() { t.done = true }

func TestLoadCatalogCreatesAndFills(t *testing.T) {
	f := newFake(2)
	cat := workload.TPCWCatalog()
	if err := LoadCatalog(f, cat, 1000); err != nil {
		t.Fatal(err)
	}
	for name, rows := range cat.Tables {
		want := rows / 1000
		if want < 10 {
			want = 10
		}
		got := len(f.tables[name])
		if got != want {
			t.Errorf("table %q: %d rows, want %d", name, got, want)
		}
	}
}

func TestLoadCatalogFactorClamps(t *testing.T) {
	f := newFake(1)
	cat := workload.RUBiSCatalog()
	if err := LoadCatalog(f, cat, 0); err != nil { // factor < 1 behaves as 1
		t.Fatal(err)
	}
	if len(f.tables["items"]) != cat.Tables["items"] {
		t.Errorf("factor 0 should load full size")
	}
}

func TestDriveCommitsExactly(t *testing.T) {
	f := newFake(1)
	cat := workload.TPCWCatalog()
	if err := LoadCatalog(f, cat, 1000); err != nil {
		t.Fatal(err)
	}
	res := Drive(f, cat, workload.TPCWShopping(), 4, 25, 1000, 3)
	if res.Commits != 100 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.ReadCommits+res.UpdateCommits != res.Commits {
		t.Fatalf("class split inconsistent: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %+v", res)
	}
}

func TestDriveRetriesAborts(t *testing.T) {
	f := newFake(1)
	f.abortEvery = 3 // every third update commit aborts once
	cat := workload.TPCWCatalog()
	if err := LoadCatalog(f, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.TPCWOrdering() // plenty of updates
	res := Drive(f, cat, mix, 2, 50, 1000, 5)
	if res.Commits != 100 {
		t.Fatalf("commits = %d (aborts must be retried to completion)", res.Commits)
	}
	if res.Aborts == 0 {
		t.Fatal("injected aborts not observed")
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %+v", res)
	}
}

func TestDriveUpdateFractionTracksMix(t *testing.T) {
	f := newFake(1)
	cat := workload.RUBiSCatalog()
	if err := LoadCatalog(f, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.RUBiSBidding()
	res := Drive(f, cat, mix, 4, 250, 1000, 11)
	frac := float64(res.UpdateCommits) / float64(res.Commits)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("update fraction %.3f, want about %.2f", frac, mix.Pw)
	}
}

func TestCheckConvergencePasses(t *testing.T) {
	f := newFake(3)
	f.CreateTable("t")
	f.Load("t", 10, func(i int64) string { return "v" })
	if err := CheckConvergence(f, []string{"t"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConvergenceDetectsValueDivergence(t *testing.T) {
	f := newFake(3)
	f.CreateTable("t")
	f.Load("t", 10, func(i int64) string { return "v" })
	f.divergeReplica = 2
	f.divergeMode = "value"
	if err := CheckConvergence(f, []string{"t"}); err == nil {
		t.Fatal("value divergence not detected")
	}
}

func TestCheckConvergenceDetectsMissingRows(t *testing.T) {
	f := newFake(2)
	f.CreateTable("t")
	f.Load("t", 10, func(i int64) string { return "v" })
	f.divergeReplica = 1
	f.divergeMode = "missing"
	if err := CheckConvergence(f, []string{"t"}); err == nil {
		t.Fatal("missing-row divergence not detected")
	}
}

func TestCheckConvergenceUnknownTable(t *testing.T) {
	f := newFake(2)
	if err := CheckConvergence(f, []string{"ghost"}); err == nil {
		t.Fatal("unknown table accepted")
	}
}
