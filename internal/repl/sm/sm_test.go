package sm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/repl"
	"repro/internal/workload"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(Options{Replicas: n})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seedTable(t *testing.T, c *Cluster, table string, rows int) {
	t.Helper()
	if err := c.CreateTable(table); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(table, rows, func(i int64) string { return fmt.Sprintf("init-%d", i) }); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesRouteToMaster(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 10)
	for i := 0; i < 5; i++ {
		tx, err := c.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if tx.(*Txn).node != 0 {
			t.Fatalf("update routed to node %d", tx.(*Txn).node)
		}
		tx.Abort()
	}
}

func TestUpdatePropagatesToSlaves(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 10)
	tx, _ := c.BeginUpdate()
	tx.Write("item", 4, "changed")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	for node := 0; node < 3; node++ {
		dump, err := c.TableDump(node, "item")
		if err != nil {
			t.Fatal(err)
		}
		if dump[4] != "changed" {
			t.Fatalf("node %d: row 4 = %q", node, dump[4])
		}
	}
}

func TestWritesetsApplyInCommitOrder(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	for i := 0; i < 20; i++ {
		tx, _ := c.BeginUpdate()
		tx.Write("item", 1, fmt.Sprintf("v%d", i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.Sync()
	dump, _ := c.TableDump(1, "item")
	if dump[1] != "v19" {
		t.Fatalf("slave has %q, want v19 (ordering violated)", dump[1])
	}
}

func TestConflictAtMasterAborts(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	a, _ := c.BeginUpdate()
	b, _ := c.BeginUpdate()
	a.Write("item", 1, "a")
	b.Write("item", 1, "b")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("second writer: %v", err)
	}
}

func TestSlaveWritesRejected(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 10)
	// Saturate node 0 so a read lands on a slave.
	hold, _ := c.BeginRead() // node 0
	ro, _ := c.BeginRead()   // node 1 (slave)
	if ro.(*Txn).node == 0 {
		t.Fatal("expected slave routing")
	}
	if err := ro.Write("item", 1, "x"); !errors.Is(err, repl.ErrReadOnlyTxn) {
		t.Fatalf("slave write: %v", err)
	}
	ro.Abort()
	hold.Abort()
}

func TestReadsBalanceAcrossMasterAndSlaves(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 10)
	seen := map[int]bool{}
	var open []repl.Txn
	for i := 0; i < 3; i++ {
		tx, _ := c.BeginRead()
		seen[tx.(*Txn).node] = true
		open = append(open, tx)
	}
	for _, tx := range open {
		tx.Abort()
	}
	if len(seen) != 3 {
		t.Fatalf("reads did not spread: %v", seen)
	}
}

func TestSlaveReadSeesAppliedState(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	tx, _ := c.BeginUpdate()
	tx.Write("item", 2, "new")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	// Open reads until one lands on the slave (the rotating tie-break
	// spreads them over both nodes within two begins).
	var ro repl.Txn
	var held []repl.Txn
	for i := 0; i < 4 && ro == nil; i++ {
		tx, _ := c.BeginRead()
		if tx.(*Txn).node == 1 {
			ro = tx
		} else {
			held = append(held, tx)
		}
	}
	if ro == nil {
		t.Fatal("read never landed on slave")
	}
	v, ok, err := ro.Read("item", 2)
	if err != nil || !ok || v != "new" {
		t.Fatalf("slave read = %q %v %v", v, ok, err)
	}
	ro.Commit()
	for _, tx := range held {
		tx.Abort()
	}
}

func TestSingleNodeCluster(t *testing.T) {
	c := newCluster(t, 1)
	seedTable(t, c, "item", 10)
	tx, _ := c.BeginUpdate()
	tx.Write("item", 1, "x")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync() // no slaves: no-op
	dump, _ := c.TableDump(0, "item")
	if dump[1] != "x" {
		t.Fatalf("row = %q", dump[1])
	}
}

func TestGCLog(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 10)
	for i := 0; i < 10; i++ {
		tx, _ := c.BeginUpdate()
		tx.Write("item", int64(i), "v")
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.Sync()
	if removed := c.GCLog(); removed != 10 {
		t.Fatalf("GC removed %d, want 10", removed)
	}
	if removed := c.GCLog(); removed != 0 {
		t.Fatalf("second GC removed %d", removed)
	}
}

func TestWorkloadConvergence(t *testing.T) {
	c := newCluster(t, 3)
	cat := workload.TPCWCatalog()
	if err := repl.LoadCatalog(c, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.TPCWOrdering()
	res := repl.Drive(c, cat, mix, 8, 40, 1000, 99)
	if res.Errors != 0 {
		t.Fatalf("driver errors: %+v", res)
	}
	if res.Commits != 8*40 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if err := repl.CheckConvergence(c, c.master.Tables()); err != nil {
		t.Fatal(err)
	}
	// Update fraction should approximate the mix.
	frac := float64(res.UpdateCommits) / float64(res.Commits)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("update fraction %.2f, want about 0.5", frac)
	}
}

func TestConcurrentCountersNoLostUpdates(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "counter", 2)
	for i := int64(0); i < 2; i++ {
		tx, _ := c.BeginUpdate()
		tx.Write("counter", i, "0")
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 6
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				row := int64(w % 2)
				for {
					tx, _ := c.BeginUpdate()
					v, _, err := tx.Read("counter", row)
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(v, "%d", &n)
					tx.Write("counter", row, fmt.Sprintf("%d", n+1))
					if err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, repl.ErrAborted) {
						t.Errorf("unexpected: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	c.Sync()
	total := 0
	for node := 0; node < 3; node++ {
		dump, _ := c.TableDump(node, "counter")
		sum := 0
		for _, v := range dump {
			var n int
			fmt.Sscanf(v, "%d", &n)
			sum += n
		}
		if node == 0 {
			total = sum
		} else if sum != total {
			t.Fatalf("node %d sum %d != master %d", node, sum, total)
		}
	}
	if total != workers*perWorker {
		t.Fatalf("lost updates: %d != %d", total, workers*perWorker)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Replicas: 0}); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestTableDumpBounds(t *testing.T) {
	c := newCluster(t, 2)
	if _, err := c.TableDump(9, "x"); err == nil {
		t.Fatal("bad node accepted")
	}
	if _, err := c.TableDump(-1, "x"); err == nil {
		t.Fatal("negative node accepted")
	}
}
