package sm

import (
	"sync"

	"repro/internal/certifier"
	"repro/internal/writeset"
)

// Log is the master's writeset propagation log: committed master
// writesets keyed by their (dense) master commit version, retained
// until every slave has applied them. The in-process Cluster and the
// networked single-master server both feed their slave proxies from
// one of these. It is safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	recs map[int64]writeset.Writeset
}

// NewLog returns an empty propagation log.
func NewLog() *Log {
	return &Log{recs: make(map[int64]writeset.Writeset)}
}

// Append records the writeset committed at version. Appends may race
// (commits publish to the log after releasing the commit mutex), so
// versions can arrive slightly out of order; SinceDense only ever
// hands out the contiguous prefix.
func (l *Log) Append(version int64, ws writeset.Writeset) {
	l.mu.Lock()
	l.recs[version] = ws
	l.mu.Unlock()
}

// Get fetches the writeset for one version, if present.
func (l *Log) Get(version int64) (writeset.Writeset, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ws, ok := l.recs[version]
	return ws, ok
}

// SinceDense returns the contiguous run of records with versions
// v+1, v+2, ... that are all present, in ascending order. A version
// still in flight truncates the run — the slave proxy applies
// writesets strictly in commit order.
func (l *Log) SinceDense(v int64) []certifier.Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []certifier.Record
	for {
		v++
		ws, ok := l.recs[v]
		if !ok {
			return out
		}
		out = append(out, certifier.Record{Version: v, Writeset: ws})
	}
}

// GCBelow removes every record with version <= upTo, returning how
// many were dropped.
func (l *Log) GCBelow(upTo int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for v := range l.recs {
		if v <= upTo {
			delete(l.recs, v)
			removed++
		}
	}
	return removed
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}
