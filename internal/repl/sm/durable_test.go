package sm

import (
	"errors"
	"testing"

	"repro/internal/repl"
	"repro/internal/sidb"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// TestDurableMasterJournalsCommits: with Options.Durable the master's
// committed writesets ride the WAL's apply stream in commit order, and
// a database rebuilt from the journal matches the live master.
func TestDurableMasterJournalsCommits(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Replicas: 2, Durable: true, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("t", 5, func(r int64) string { return "seed" }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tx, err := c.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("t", int64(i%5), "x"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	c.Sync()
	want, err := c.TableDump(0, "t")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	fs.PowerCycle(false) // power loss: commits were fsynced before ack
	_, rec, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	db := sidb.New()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(db); err != nil {
		t.Fatal(err)
	}
	got, err := db.Dump("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, master has %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %d: recovered %q, master %q", k, got[k], v)
		}
	}
}

func TestDurableRequiresJournal(t *testing.T) {
	if _, err := New(Options{Replicas: 1, Durable: true}); err == nil {
		t.Fatal("Durable without Journal accepted")
	}
}

// closedJournal models a WAL whose graceful Close raced an in-flight
// commit: the append landed, but the group fsync reports ErrClosed.
type closedJournal struct{}

func (closedJournal) AppendApply(int64, writeset.Writeset) error { return nil }
func (closedJournal) Seq() int64                                 { return 1 }
func (closedJournal) Sync(int64) error                           { return wal.ErrClosed }

// TestCommitDuringCloseReturnsAmbiguousOutcome: a Sync failing with
// wal.ErrClosed is a clean-shutdown race, not a disk failure — Commit
// must report the unknown outcome instead of panicking the process,
// and must not look like an abort (a blind retry could double-apply).
func TestCommitDuringCloseReturnsAmbiguousOutcome(t *testing.T) {
	c, err := New(Options{Replicas: 1, Durable: true, Journal: closedJournal{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx, err := c.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("t", 1, "v"); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit acknowledged although its durability is unknown")
	}
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("commit error %v, want wal.ErrClosed in the chain", err)
	}
	if errors.Is(err, repl.ErrAborted) {
		t.Fatalf("ambiguous outcome reported as an abort: %v", err)
	}
}
