package sm

import (
	"testing"

	"repro/internal/sidb"
	"repro/internal/wal"
)

// TestDurableMasterJournalsCommits: with Options.Durable the master's
// committed writesets ride the WAL's apply stream in commit order, and
// a database rebuilt from the journal matches the live master.
func TestDurableMasterJournalsCommits(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Replicas: 2, Durable: true, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("t", 5, func(r int64) string { return "seed" }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tx, err := c.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("t", int64(i%5), "x"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	c.Sync()
	want, err := c.TableDump(0, "t")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	fs.PowerCycle(false) // power loss: commits were fsynced before ack
	_, rec, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	db := sidb.New()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(db); err != nil {
		t.Fatal(err)
	}
	got, err := db.Dump("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, master has %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("row %d: recovered %q, master %q", k, got[k], v)
		}
	}
}

func TestDurableRequiresJournal(t *testing.T) {
	if _, err := New(Options{Replicas: 1, Durable: true}); err == nil {
		t.Fatal("Durable without Journal accepted")
	}
}
