// Package sm implements the single-master replicated database of §5.2
// (Ganymed-style): the master database executes all update
// transactions under ordinary first-committer-wins snapshot isolation;
// slave databases are caches that execute read-only transactions and
// apply the master's writesets in commit order through their slave
// proxies — the only source of updates to a slave. The load balancer
// dispatches updates to the master and reads to the least-loaded
// replica, master included.
//
// No certifier is needed: the master's own concurrency control aborts
// conflicting updates, which is what makes the single-master design
// simpler to build (§2).
package sm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/lb"
	"repro/internal/repl"
	"repro/internal/repl/pipeline"
	"repro/internal/sidb"
	"repro/internal/wal"
	"repro/internal/writeset"
)

// Journal is the durability surface a single-master cluster needs
// from a write-ahead log: the master's committed writesets are
// journaled through the database's apply-time hook (AppendApply, in
// commit order under the commit mutex) and Commit acknowledges only
// after Sync(Seq()) reports them durable. *wal.WAL implements it.
type Journal interface {
	AppendApply(local int64, ws writeset.Writeset) error
	Seq() int64
	Sync(seq int64) error
}

// SyncCommit blocks on the journal's group fsync after a commit was
// installed in the master database, gating the acknowledgement. A Sync
// failing with wal.ErrClosed is a graceful Close racing the in-flight
// commit — no disk failure, just an ambiguous outcome for the caller
// to surface. Any other failure is fail-stop: the commit is installed
// in memory but would roll back on restart, so limping on would serve
// state the slaves can never receive. Both single-master commit paths
// (the in-process Txn and the server's proxy) gate on this one helper
// so their crash behavior cannot diverge.
func SyncCommit(j Journal, version int64) error {
	if err := j.Sync(j.Seq()); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return fmt.Errorf("sm: commit durability unknown (shutting down): %w", err)
		}
		panic(fmt.Sprintf("sm: WAL sync failed after commit install (version %d): %v", version, err))
	}
	return nil
}

// Options configure a single-master cluster.
type Options struct {
	// Replicas is the total node count: 1 master + Replicas-1 slaves.
	Replicas int
	// Durable journals every master commit through Journal before it
	// is acknowledged (default off, preserving the in-memory behavior).
	// The single-master design needs no certifier, so durability rides
	// the master database's apply stream alone.
	Durable bool
	// Journal is the write-ahead log Durable commits flow through.
	Journal Journal
	// ApplyWorkers sizes each slave's conflict-aware parallel applier;
	// <= 1 preserves the serial behavior.
	ApplyWorkers int
}

// slave is one read-only replica plus its proxy state. The pipeline
// applier owns the apply lock and the applied cursor, which holds the
// absolute master version this slave has reached.
type slave struct {
	id int
	db *sidb.DB
	ap *pipeline.Applier
}

// Cluster is a running single-master system.
type Cluster struct {
	opts   Options
	master *sidb.DB
	slaves []*slave

	// wlog retains committed master writesets for propagation, keyed
	// by absolute master version; base is the master version after
	// the initial load (slave apply cursors are seeded to it and hold
	// absolute master versions from then on).
	wlog   *Log
	baseMu sync.Mutex
	base   int64

	balancer *lb.Balancer // over all nodes: 0 = master, i>0 = slave i-1
}

// New creates a single-master cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("sm: %d replicas", opts.Replicas)
	}
	if opts.Durable && opts.Journal == nil {
		return nil, fmt.Errorf("sm: Durable requires a Journal")
	}
	c := &Cluster{
		opts:     opts,
		master:   sidb.New(),
		wlog:     NewLog(),
		balancer: lb.New(opts.Replicas),
	}
	if opts.Durable {
		j := opts.Journal
		c.master.SetJournal(func(ws writeset.Writeset, version int64) error {
			return j.AppendApply(version, ws)
		})
	}
	for i := 1; i < opts.Replicas; i++ {
		db := sidb.New()
		c.slaves = append(c.slaves, &slave{id: i, db: db, ap: pipeline.NewApplier(db, opts.ApplyWorkers)})
	}
	return c, nil
}

// Replicas returns the total node count.
func (c *Cluster) Replicas() int { return 1 + len(c.slaves) }

// CreateTable creates the table on the master and every slave.
func (c *Cluster) CreateTable(name string) error {
	if err := c.master.CreateTable(name); err != nil {
		return err
	}
	for _, s := range c.slaves {
		if err := s.db.CreateTable(name); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-fills a table identically everywhere (initial load).
func (c *Cluster) Load(table string, rows int, value func(int64) string) error {
	if err := c.master.BulkLoad(table, rows, value); err != nil {
		return err
	}
	for _, s := range c.slaves {
		if err := s.db.BulkLoad(table, rows, value); err != nil {
			return err
		}
	}
	c.baseMu.Lock()
	c.base = c.master.Version()
	base := c.base
	c.baseMu.Unlock()
	// Slave cursors hold absolute master versions; the load is the
	// starting point.
	for _, s := range c.slaves {
		if err := s.ap.Reset(func(int64) (int64, error) { return base, nil }); err != nil {
			return err
		}
	}
	return nil
}

// record stores a committed writeset for propagation.
func (c *Cluster) record(version int64, ws writeset.Writeset) {
	c.wlog.Append(version, ws)
}

// syncSlave applies the dense prefix of pending writesets at s. Master
// versions are dense (every commit increments by one), so the slave's
// apply stage drains the contiguous run past its cursor.
func (c *Cluster) syncSlave(s *slave) {
	s.ap.Apply(c.wlog.SinceDense(s.ap.Applied()))
}

func (c *Cluster) baseVersion() int64 {
	c.baseMu.Lock()
	defer c.baseMu.Unlock()
	return c.base
}

// Sync drains the propagation log into every slave.
func (c *Cluster) Sync() {
	for _, s := range c.slaves {
		c.syncSlave(s)
	}
}

// GCLog prunes propagated writesets every slave has applied, returning
// the number of entries removed.
func (c *Cluster) GCLog() int {
	minApplied := int64(1<<62 - 1)
	for _, s := range c.slaves {
		if v := s.ap.Applied(); v < minApplied {
			minApplied = v
		}
	}
	if len(c.slaves) == 0 {
		minApplied = c.baseVersion()
	}
	return c.wlog.GCBelow(minApplied)
}

// TableDump snapshots a node's table: index 0 is the master, i>0 the
// (i-1)-th slave.
func (c *Cluster) TableDump(node int, table string) (map[int64]string, error) {
	var db *sidb.DB
	switch {
	case node == 0:
		db = c.master
	case node > 0 && node <= len(c.slaves):
		db = c.slaves[node-1].db
	default:
		return nil, fmt.Errorf("sm: node %d out of range", node)
	}
	return db.Dump(table)
}

// Txn is a client transaction. Updates run on the master; reads run on
// whichever node the balancer chose.
type Txn struct {
	cluster  *Cluster
	node     int // balancer index
	inner    *sidb.Txn
	readOnly bool
	done     bool
}

var _ repl.Txn = (*Txn)(nil)

// BeginRead starts a read-only transaction on the least-loaded node
// (master included, §5.2).
func (c *Cluster) BeginRead() (repl.Txn, error) {
	node := c.balancer.Acquire()
	var inner *sidb.Txn
	if node == 0 {
		inner = c.master.Begin()
	} else {
		s := c.slaves[node-1]
		s.ap.Pin(func(int64) { inner = s.db.Begin() })
	}
	return &Txn{cluster: c, node: node, inner: inner, readOnly: true}, nil
}

// BeginUpdate starts an update transaction on the master.
func (c *Cluster) BeginUpdate() (repl.Txn, error) {
	node, err := c.balancer.AcquireWhere(func(i int) bool { return i == 0 })
	if err != nil {
		return nil, err
	}
	return &Txn{cluster: c, node: node, inner: c.master.Begin()}, nil
}

// Read implements repl.Txn.
func (t *Txn) Read(table string, row int64) (string, bool, error) {
	return t.inner.Read(table, row)
}

// Write implements repl.Txn. Slave proxies reject writes: they are
// the only source of updates to their database.
func (t *Txn) Write(table string, row int64, value string) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Write(table, row, value)
}

// Delete implements repl.Txn.
func (t *Txn) Delete(table string, row int64) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Delete(table, row)
}

// Commit implements repl.Txn. Read-only transactions always commit.
// Updates commit at the master under first-committer-wins; on success
// the master proxy extracts the writeset (the trigger mechanism of
// §5.2) and hands it to the load balancer for relay to the slaves.
func (t *Txn) Commit() error {
	if t.done {
		return sidb.ErrTxnDone
	}
	t.done = true
	defer t.cluster.balancer.Release(t.node)

	ws, version, err := t.inner.Commit()
	if err != nil {
		if errors.Is(err, sidb.ErrConflict) {
			return fmt.Errorf("%w (%v)", repl.ErrAborted, err)
		}
		return err
	}
	if ws.Empty() {
		return nil
	}
	if t.cluster.opts.Durable {
		// The writeset was journaled by the apply hook inside the
		// database commit; block on the group fsync before the commit
		// is acknowledged (or propagated).
		if err := SyncCommit(t.cluster.opts.Journal, version); err != nil {
			return err
		}
	}
	t.cluster.record(version, ws)
	for _, s := range t.cluster.slaves {
		t.cluster.syncSlave(s)
	}
	return nil
}

// Abort implements repl.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.inner.Abort()
	t.cluster.balancer.Release(t.node)
}

var _ repl.System = (*Cluster)(nil)
var _ repl.Loader = (*Cluster)(nil)
