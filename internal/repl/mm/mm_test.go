package mm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/repl"
	"repro/internal/workload"
)

func newCluster(t *testing.T, n int, opts ...func(*Options)) *Cluster {
	t.Helper()
	o := Options{Replicas: n, EagerCertification: false}
	for _, f := range opts {
		f(&o)
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seedTable(t *testing.T, c *Cluster, table string, rows int) {
	t.Helper()
	if err := c.CreateTable(table); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(table, rows, func(i int64) string { return fmt.Sprintf("init-%d", i) }); err != nil {
		t.Fatal(err)
	}
}

func TestReadSeesLoadedData(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 100)
	for i := 0; i < 6; i++ { // rotate across replicas
		tx, err := c.BeginRead()
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := tx.Read("item", 42)
		if err != nil || !ok || v != "init-42" {
			t.Fatalf("read = %q %v %v", v, ok, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUpdatePropagatesToAllReplicas(t *testing.T) {
	c := newCluster(t, 4)
	seedTable(t, c, "item", 10)
	tx, _ := c.BeginUpdate()
	if err := tx.Write("item", 5, "updated"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	for r := 0; r < 4; r++ {
		dump, err := c.TableDump(r, "item")
		if err != nil {
			t.Fatal(err)
		}
		if dump[5] != "updated" {
			t.Fatalf("replica %d: row 5 = %q", r, dump[5])
		}
	}
}

func TestConflictingUpdatesOneWins(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	a, _ := c.BeginUpdate()
	b, _ := c.BeginUpdate()
	a.Write("item", 1, "from-a")
	b.Write("item", 1, "from-b")
	errA := a.Commit()
	errB := b.Commit()
	if (errA == nil) == (errB == nil) {
		t.Fatalf("exactly one should win: a=%v b=%v", errA, errB)
	}
	loser := errA
	if errA == nil {
		loser = errB
	}
	if !errors.Is(loser, repl.ErrAborted) {
		t.Fatalf("loser error = %v", loser)
	}
	commits, aborts := c.Certifier().Stats()
	if commits != 1 || aborts != 1 {
		t.Fatalf("certifier stats %d/%d", commits, aborts)
	}
}

func TestDisjointUpdatesBothCommit(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	a, _ := c.BeginUpdate()
	b, _ := c.BeginUpdate()
	a.Write("item", 1, "a")
	b.Write("item", 2, "b")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyNeverAborts(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	ro, _ := c.BeginRead()
	ro.Read("item", 1)
	// Concurrent update commits.
	up, _ := c.BeginUpdate()
	up.Write("item", 1, "x")
	if err := up.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only aborted: %v", err)
	}
}

func TestGSISnapshotIsReplicaLocal(t *testing.T) {
	// A transaction started before a commit reads the old value even
	// after the writeset lands.
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	ro, _ := c.BeginRead()

	up, _ := c.BeginUpdate()
	up.Write("item", 3, "new")
	if err := up.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync()

	v, ok, err := ro.Read("item", 3)
	if err != nil || !ok || v != "init-3" {
		t.Fatalf("snapshot leaked: %q %v %v", v, ok, err)
	}
	ro.Commit()
}

func TestWriteOnReadOnlyTxnRejected(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	ro, _ := c.BeginRead()
	if err := ro.Write("item", 1, "x"); !errors.Is(err, repl.ErrReadOnlyTxn) {
		t.Fatalf("write on read txn: %v", err)
	}
	ro.Abort()
}

func TestStaleReplicaConflictDetected(t *testing.T) {
	// Update committed via replica A; replica B hasn't applied it yet
	// when a transaction on B writes the same row -> certifier abort.
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)

	// Pin a transaction on replica 1 (least-loaded routing: first txn
	// goes to 0, second to 1).
	txA, _ := c.BeginUpdate() // replica 0
	txB, _ := c.BeginUpdate() // replica 1
	txA.Write("item", 7, "a")
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	txB.Write("item", 7, "b")
	if err := txB.Commit(); !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("stale conflicting write committed: %v", err)
	}
}

func TestEagerCertificationAbortsEarly(t *testing.T) {
	c := newCluster(t, 2, func(o *Options) { o.EagerCertification = true })
	seedTable(t, c, "item", 10)
	txA, _ := c.BeginUpdate()
	txB, _ := c.BeginUpdate()
	txA.Write("item", 1, "a")
	if err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	// txB began before txA committed, so its snapshot is stale and the
	// partial writeset conflicts immediately at Write time.
	err := txB.Write("item", 1, "b")
	if !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("eager certification missed conflict: %v", err)
	}
	txB.Abort()
}

func TestAbortDiscardsEverything(t *testing.T) {
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	tx, _ := c.BeginUpdate()
	tx.Write("item", 1, "phantom")
	tx.Abort()
	c.Sync()
	for r := 0; r < 2; r++ {
		dump, _ := c.TableDump(r, "item")
		if dump[1] != "init-1" {
			t.Fatalf("aborted write visible on replica %d: %q", r, dump[1])
		}
	}
	if v := c.Certifier().Version(); v != 0 {
		t.Fatalf("certifier advanced to %d", v)
	}
}

func TestWorkloadConvergence(t *testing.T) {
	c := newCluster(t, 3)
	cat := workload.TPCWCatalog()
	if err := repl.LoadCatalog(c, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.TPCWShopping()
	res := repl.Drive(c, cat, mix, 8, 40, 1000, 42)
	if res.Errors != 0 {
		t.Fatalf("driver errors: %+v", res)
	}
	if res.Commits != 8*40 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.UpdateCommits == 0 {
		t.Fatal("no updates committed")
	}
	if err := repl.CheckConvergence(c, c.db0Tables()); err != nil {
		t.Fatal(err)
	}
}

// db0Tables lists replica 0's tables for convergence checks.
func (c *Cluster) db0Tables() []string {
	return c.slot(0).db.Tables()
}

func TestWorkloadWithReplicatedCertifier(t *testing.T) {
	c := newCluster(t, 2, func(o *Options) { o.ReplicatedCertifier = true })
	cat := workload.RUBiSCatalog()
	if err := repl.LoadCatalog(c, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.RUBiSBidding()
	res := repl.Drive(c, cat, mix, 4, 25, 1000, 7)
	if res.Errors != 0 {
		t.Fatalf("driver errors: %+v", res)
	}
	if err := repl.CheckConvergence(c, c.db0Tables()); err != nil {
		t.Fatal(err)
	}
	// A backup failure mid-flight must not block commits.
	c.Transport().SetDown(2, true)
	tx, _ := c.BeginUpdate()
	tx.Write("items", 1, "after-failure")
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit with one backup down: %v", err)
	}
}

func TestConcurrentMixedWorkloadNoLostUpdates(t *testing.T) {
	// All clients increment disjoint-ish counters with retry; total
	// committed increments must equal the final sum across rows.
	c := newCluster(t, 3)
	seedTable(t, c, "counter", 4)
	// Overwrite values to "0".
	for i := int64(0); i < 4; i++ {
		tx, _ := c.BeginUpdate()
		tx.Write("counter", i, "0")
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 6
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				row := int64((w + i) % 4)
				for {
					tx, _ := c.BeginUpdate()
					v, _, err := tx.Read("counter", row)
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(v, "%d", &n)
					if err := tx.Write("counter", row, fmt.Sprintf("%d", n+1)); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, repl.ErrAborted) {
						t.Errorf("unexpected: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	c.Sync()
	total := 0
	dump, err := c.TableDump(1, "counter")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dump {
		var n int
		fmt.Sscanf(v, "%d", &n)
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("lost updates: sum=%d want %d", total, workers*perWorker)
	}
	if err := repl.CheckConvergence(c, []string{"counter"}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Replicas: 0}); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestTableDumpBounds(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.TableDump(5, "x"); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	if _, err := c.TableDump(0, "missing"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestClusterGCPrunesAppliedLog(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 20)
	for i := 0; i < 15; i++ {
		tx, _ := c.BeginUpdate()
		tx.Write("item", int64(i), "v")
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	c.Sync()
	removed := c.GC()
	if removed != 15 {
		t.Fatalf("GC removed %d records, want 15", removed)
	}
	if c.Certifier().LogLen() != 0 {
		t.Fatalf("log length %d after full GC", c.Certifier().LogLen())
	}
	// The system keeps working after pruning: new snapshots are at the
	// horizon, not below it.
	tx, _ := c.BeginUpdate()
	tx.Write("item", 1, "post-gc")
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-GC commit: %v", err)
	}
}

func TestClusterGCSafeWithLaggingReplica(t *testing.T) {
	// Nothing may be pruned past the slowest replica, and a stale
	// transaction begun before GC must still certify correctly.
	c := newCluster(t, 2)
	seedTable(t, c, "item", 10)
	stale, _ := c.BeginUpdate() // snapshot 0 on replica 0
	up, _ := c.BeginUpdate()    // replica 1
	up.Write("item", 3, "x")
	if err := up.Commit(); err != nil {
		t.Fatal(err)
	}
	// All replicas applied version 1, but the stale transaction's
	// snapshot predates it; GC must keep certification sound for it.
	c.Sync()
	c.GC()
	stale.Write("item", 3, "conflict")
	err := stale.Commit()
	if err == nil {
		t.Fatal("stale conflicting transaction committed after GC")
	}
}

func TestWorkloadWithGroupCommit(t *testing.T) {
	// The full driver workload through the batching certifier, on top
	// of a replicated Paxos group: decisions and convergence must be
	// indistinguishable from the sequential path.
	c := newCluster(t, 3, func(o *Options) {
		o.ReplicatedCertifier = true
		o.GroupCommit = true
	})
	cat := workload.TPCWCatalog()
	if err := repl.LoadCatalog(c, cat, 1000); err != nil {
		t.Fatal(err)
	}
	mix := workload.TPCWOrdering() // update-heavy: maximizes batching
	res := repl.Drive(c, cat, mix, 8, 30, 1000, 11)
	if res.Errors != 0 {
		t.Fatalf("driver errors: %+v", res)
	}
	if res.Commits != 8*30 {
		t.Fatalf("commits = %d", res.Commits)
	}
	if res.UpdateCommits == 0 {
		t.Fatal("no updates committed")
	}
	if err := repl.CheckConvergence(c, c.db0Tables()); err != nil {
		t.Fatal(err)
	}
	commits, _ := c.Certifier().Stats()
	if commits != res.UpdateCommits {
		t.Fatalf("certifier commits %d != driver update commits %d", commits, res.UpdateCommits)
	}
	// Group commit must never use more Paxos slots than commits.
	if slots := c.Certifier().ReplicationSlots(); int64(slots) > commits {
		t.Fatalf("%d slots for %d commits", slots, commits)
	}
}

func TestGroupCommitConflictsStillAbort(t *testing.T) {
	c := newCluster(t, 2, func(o *Options) { o.GroupCommit = true })
	seedTable(t, c, "item", 10)
	t1, _ := c.BeginUpdate()
	t2, _ := c.BeginUpdate()
	if err := t1.Write("item", 3, "one"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("item", 3, "two"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, repl.ErrAborted) {
		t.Fatalf("conflicting commit through group commit: %v", err)
	}
}

func TestAddReplicaClonesStateAndServes(t *testing.T) {
	c := newCluster(t, 1)
	seedTable(t, c, "item", 50)
	// Commit past the load so the snapshot carries certified state.
	tx, _ := c.BeginUpdate()
	tx.Write("item", 7, "pre-join")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	idx, err := c.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || c.Replicas() != 2 {
		t.Fatalf("idx = %d replicas = %d", idx, c.Replicas())
	}
	dump, err := c.TableDump(1, "item")
	if err != nil {
		t.Fatal(err)
	}
	if dump[7] != "pre-join" || dump[3] != "init-3" {
		t.Fatalf("snapshot not cloned: %q %q", dump[7], dump[3])
	}

	// Commits after the join propagate to the new replica too.
	tx, _ = c.BeginUpdate()
	tx.Write("item", 8, "post-join")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	if err := repl.CheckConvergence(c, []string{"item"}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveReplicaStopsRoutingKeepsInFlight(t *testing.T) {
	c := newCluster(t, 3)
	seedTable(t, c, "item", 20)
	// Hold a transaction on replica 1, then remove it.
	var onOne repl.Txn
	var held []repl.Txn
	for i := 0; i < 6 && onOne == nil; i++ {
		tx, _ := c.BeginUpdate()
		if tx.(*Txn).replica.id == 1 {
			onOne = tx
		} else {
			held = append(held, tx)
		}
	}
	if onOne == nil {
		t.Fatal("no transaction landed on replica 1")
	}
	for _, tx := range held {
		tx.Abort()
	}
	if err := c.RemoveReplica(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica(0); err == nil {
		t.Fatal("primary removal allowed")
	}
	if err := c.RemoveReplica(1); err == nil {
		t.Fatal("double removal allowed")
	}
	if c.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", c.Replicas())
	}
	// The in-flight transaction on the removed replica finishes.
	if err := onOne.Write("item", 3, "from-removed"); err != nil {
		t.Fatal(err)
	}
	if err := onOne.Commit(); err != nil {
		t.Fatalf("in-flight commit on removed replica: %v", err)
	}
	// New transactions never route to the removed slot.
	for i := 0; i < 12; i++ {
		tx, _ := c.BeginRead()
		if tx.(*Txn).replica.id == 1 {
			t.Fatal("routed to removed replica")
		}
		tx.Abort()
	}
	// Survivors converge, including the commit from the removed node,
	// and GC is not blocked by the departed replica.
	c.Sync()
	if err := repl.CheckConvergence(c, []string{"item"}); err != nil {
		t.Fatal(err)
	}
	if dump, _ := c.TableDump(0, "item"); dump[3] != "from-removed" {
		t.Fatalf("in-flight commit lost: %q", dump[3])
	}
	c.GC()
}
