package mm

import (
	"testing"

	"repro/internal/certifier"
	"repro/internal/wal"
)

// TestDurableCommitsJournalBeforeAck: with Options.Durable every
// certified writeset is in the journal by the time Commit returns, and
// a restarted certifier rebuilt from that journal carries the full
// log. Group commit batches the journal appends exactly as it batches
// certification.
func TestDurableCommitsJournalBeforeAck(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{
		Replicas:    2,
		GroupCommit: true,
		Durable:     true,
		Journal:     w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("t", 10, func(r int64) string { return "seed" }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		tx, err := c.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("t", int64(i%10), "x"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	c.Sync()
	w.Close()

	fs.PowerCycle(false) // power loss: only fsynced state survives
	_, rec, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recovered := certifier.NewFromRecords(rec.Records, rec.Base)
	if got, want := recovered.Version(), c.Certifier().Version(); got != want {
		t.Fatalf("journal recovered version %d, live certifier %d", got, want)
	}
	if got, want := recovered.LogLen(), c.Certifier().LogLen(); got != want {
		t.Fatalf("journal recovered %d records, live certifier %d", got, want)
	}
}

// TestDurableComposesWithReplicatedCertifier: Durable and
// ReplicatedCertifier run together — every commit goes through a Paxos
// round AND lands in the journal, a restart from the journal alone
// recovers the full log, and because the quorum (not the journal) is
// the durability authority, a dead journal detaches instead of
// withholding acks.
func TestDurableComposesWithReplicatedCertifier(t *testing.T) {
	fs := wal.NewMemFS()
	w, _, err := wal.Open(wal.Options{FS: fs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{
		Replicas:            2,
		ReplicatedCertifier: true,
		GroupCommit:         true,
		Durable:             true,
		Journal:             w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("t", 10, func(r int64) string { return "seed" }); err != nil {
		t.Fatal(err)
	}
	commit := func(i int) {
		t.Helper()
		tx, err := c.BeginUpdate()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("t", int64(i%10), "x"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		commit(i)
	}
	c.Sync()
	w.Close()

	fs.PowerCycle(false)
	_, rec, err := wal.Open(wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recovered := certifier.NewFromRecords(rec.Records, rec.Base)
	if got, want := recovered.Version(), c.Certifier().Version(); got != want {
		t.Fatalf("journal recovered version %d, live certifier %d", got, want)
	}
	if got, want := recovered.LogLen(), c.Certifier().LogLen(); got != want {
		t.Fatalf("journal recovered %d records, live certifier %d", got, want)
	}

	// The journal is already closed: with replication the commit must
	// still be acknowledged (the quorum is the authority) and the dead
	// journal detaches.
	commit(100)
	if c.Certifier().JournalError() == nil {
		t.Fatal("dead journal did not detach")
	}
	commit(101)
}

// TestDurableRequiresJournal pins the option validation.
func TestDurableRequiresJournal(t *testing.T) {
	if _, err := New(Options{Replicas: 1, Durable: true}); err == nil {
		t.Fatal("Durable without Journal accepted")
	}
}

// TestDurableJournalFailureWithholdsAck: once the journal dies, update
// commits must fail rather than acknowledge a non-durable commit;
// read-only transactions are unaffected.
func TestDurableJournalFailureWithholdsAck(t *testing.T) {
	fs := wal.NewMemFS()
	cfs := wal.NewCrashFS(fs, -1, 0)
	w, _, err := wal.Open(wal.Options{FS: cfs, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Replicas: 1, Durable: true, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	w.Close() // the journal dies

	tx, err := c.BeginUpdate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("t", 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit acknowledged with a dead journal")
	}

	ro, err := c.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.Read("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatalf("read-only commit needs no journal: %v", err)
	}
}
