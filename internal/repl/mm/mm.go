// Package mm implements the multi-master replicated database of §5.1
// (Tashkent-style): every replica executes both read-only and update
// transactions against its local snapshot-isolated database; a proxy
// extracts writesets eagerly, a replicated certifier detects
// system-wide write-write conflicts and assigns global versions, and
// committed writesets are propagated to all other replicas and applied
// in commit order.
//
// Under generalized snapshot isolation a transaction's snapshot is the
// latest version its replica has applied — possibly older than the
// globally latest — so it is available without communication; the
// certifier closes the gap at commit time.
package mm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/certifier"
	"repro/internal/lb"
	"repro/internal/paxos"
	"repro/internal/repl"
	"repro/internal/repl/pipeline"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// CertService is the certification surface the cluster depends on:
// commit-time certification, the eager conflict probe, and writeset
// retrieval for propagation. A local *certifier.Certifier satisfies it
// directly; the networked server injects a remote implementation that
// speaks the wire protocol to the certifier host, which is how a
// single-replica Cluster becomes one node of a multi-process
// multi-master system.
type CertService interface {
	// Certify submits a commit-time certification request.
	Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error)
	// Check probes a partial writeset for an already-certain conflict
	// (eager certification, §5.1) without committing anything.
	Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64)
	// Since returns every certified record with version > v in
	// ascending version order.
	Since(v int64) []certifier.Record
}

// TracedCertService is optionally implemented by certification
// services that carry a cross-node trace id with each request
// (pipeline.HostCert locally, the wire Link/LeaderRing remotely). The
// cluster routes through it when available so commit-path spans stitch
// across nodes; plain CertServices keep working untraced.
type TracedCertService interface {
	CertifyTraced(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error)
}

// TwoPCService is optionally implemented by certification services
// that support the cross-shard two-phase commit protocol
// (pipeline.HostCert locally, the wire Link remotely). A cluster whose
// service lacks it cannot participate in cross-shard transactions.
type TwoPCService interface {
	PrepareTxn(p certifier.PreparedTxn) (vote bool, conflictWith int64, err error)
	DecideTxn(id string, commit bool) (version int64, err error)
	ResolveTxn(id string) (commit bool, err error)
	ForgetTxn(id string) error
}

// Options configure a multi-master cluster.
type Options struct {
	// Replicas is the number of database replicas (>= 1).
	Replicas int
	// ReplicatedCertifier runs the certifier over a 3-node Paxos group
	// (leader + two backups), as in the paper's deployment.
	ReplicatedCertifier bool
	// EagerCertification makes the proxy certify partial writesets on
	// every write, aborting doomed transactions early (§5.1). Commit
	// certification happens regardless.
	EagerCertification bool
	// GroupCommit routes commit certification through a batching
	// front end that amortizes one Paxos round (and one certifier
	// lock acquisition) over all concurrently committing transactions,
	// the way the paper's certifier logs writesets in batches (§6.3).
	// Decisions are identical to sequential certification.
	GroupCommit bool
	// MaxBatch caps one group commit; zero selects the certifier's
	// default. Ignored unless GroupCommit is set.
	MaxBatch int
	// Cert injects an external certification service — typically a
	// remote certifier reached over the wire protocol. When set,
	// ReplicatedCertifier, GroupCommit and MaxBatch are ignored: the
	// injected service owns those concerns.
	Cert CertService
	// AsyncApply acknowledges a commit as soon as its writeset is
	// durable at the certifier, leaving application at the origin
	// replica to the background propagation path (Sync/ApplyRecords)
	// like every other replica — the paper's commit rule (§5.1).
	// The networked server sets this on non-certifier nodes so a
	// commit does not re-download the unapplied backlog its puller is
	// already fetching; the trade is that the next transaction on the
	// same replica may not yet see this commit (GSI allows that).
	AsyncApply bool
	// Durable journals every certified writeset through Journal before
	// the commit is acknowledged (default off, preserving the purely
	// in-memory behavior). Group commit composes: a batch is staged as
	// one journal append and one sync. ReplicatedCertifier composes
	// too: the Paxos quorum is then the durability authority and the
	// journal becomes a local restart cache whose failures detach it
	// rather than failing commits. Ignored when Cert injects an
	// external certification service — the remote host owns durability.
	Durable bool
	// Journal is the write-ahead log Durable commits flow through
	// (typically a *wal.WAL); required when Durable is set.
	Journal certifier.Journal
	// ApplyWorkers sizes each replica's conflict-aware parallel
	// applier: non-conflicting remote writesets install concurrently
	// across the database's lock shards, while versions still retire
	// strictly in order. <= 1 preserves the serial behavior.
	ApplyWorkers int
}

// replica is one database node plus its proxy state. The pipeline
// applier owns both the apply lock and the applied cursor (highest
// global version applied locally).
type replica struct {
	id int
	db *sidb.DB
	ap *pipeline.Applier
	// ready is false while an elastically added replica installs its
	// state transfer; the propagation paths skip not-ready replicas
	// (their database lacks the schema until the snapshot lands).
	// Reading a stale false only delays propagation by one pull.
	ready atomic.Bool
}

// newReplica builds one node with its apply stage.
func newReplica(id, workers int) *replica {
	db := sidb.New()
	return &replica{id: id, db: db, ap: pipeline.NewApplier(db, workers)}
}

// Cluster is a running multi-master system. Membership is elastic:
// AddReplica clones the primary's state into a fresh node and admits
// it into routing, RemoveReplica retires one (§5's cluster, grown and
// shrunk online).
type Cluster struct {
	opts      Options
	cert      CertService
	batcher   *certifier.Batcher    // nil unless GroupCommit
	transport *paxos.LocalTransport // nil unless replicated
	balancer  *lb.Balancer

	// mu guards the slots slice itself; slot indices are stable and
	// shared with the balancer (removed slots are tombstoned there).
	mu    sync.RWMutex
	slots []*replica
}

// New creates a multi-master cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("mm: %d replicas", opts.Replicas)
	}
	if opts.Durable && opts.Journal == nil && opts.Cert == nil {
		return nil, fmt.Errorf("mm: Durable requires a Journal")
	}
	c := &Cluster{opts: opts, balancer: lb.New(opts.Replicas)}
	for i := 0; i < opts.Replicas; i++ {
		r := newReplica(i, opts.ApplyWorkers)
		r.ready.Store(true)
		c.slots = append(c.slots, r)
	}
	switch {
	case opts.Cert != nil:
		c.cert = opts.Cert
	case opts.ReplicatedCertifier:
		cert, tr, err := certifier.NewReplicated(3)
		if err != nil {
			return nil, err
		}
		c.cert, c.transport = cert, tr
		if opts.Durable {
			// The Paxos quorum is the durability authority; the journal
			// rides along as a local restart cache and detaches on
			// failure instead of blocking commits.
			cert.SetJournal(opts.Journal)
		}
		if opts.GroupCommit {
			c.batcher = certifier.NewBatcher(cert, opts.MaxBatch)
		}
	default:
		cert := certifier.New()
		c.cert = cert
		if opts.Durable {
			cert.SetJournal(opts.Journal)
		}
		if opts.GroupCommit {
			c.batcher = certifier.NewBatcher(cert, opts.MaxBatch)
		}
	}
	return c, nil
}

// certify submits one commit-time certification request, through the
// group-commit batcher when enabled, forwarding the transaction's
// trace id when the service accepts one.
func (c *Cluster) certify(snapshot int64, ws writeset.Writeset, trace uint64) (certifier.Outcome, error) {
	if c.batcher != nil {
		return c.batcher.Certify(snapshot, ws)
	}
	if tc, ok := c.cert.(TracedCertService); ok {
		return tc.CertifyTraced(snapshot, ws, trace)
	}
	return c.cert.Certify(snapshot, ws)
}

// twoPC resolves the cluster's 2PC endpoint: a service that speaks the
// protocol natively, or the local certifier directly.
func (c *Cluster) twoPC() (TwoPCService, error) {
	if s, ok := c.cert.(TwoPCService); ok {
		return s, nil
	}
	if cert, ok := c.cert.(*certifier.Certifier); ok {
		return certTwoPC{cert}, nil
	}
	return nil, fmt.Errorf("mm: certification service %T does not support 2pc", c.cert)
}

// certTwoPC adapts a bare certifier to the TwoPCService method set.
type certTwoPC struct{ c *certifier.Certifier }

func (a certTwoPC) PrepareTxn(p certifier.PreparedTxn) (bool, int64, error) { return a.c.Prepare(p) }
func (a certTwoPC) DecideTxn(id string, commit bool) (int64, error)         { return a.c.Decide(id, commit) }
func (a certTwoPC) ResolveTxn(id string) (bool, error)                      { return a.c.Resolve(id) }
func (a certTwoPC) ForgetTxn(id string) error                               { return a.c.Forget(id) }

// PrepareTxn runs the first 2PC phase for a cross-shard fragment
// against this group's certifier.
func (c *Cluster) PrepareTxn(p certifier.PreparedTxn) (bool, int64, error) {
	s, err := c.twoPC()
	if err != nil {
		return false, 0, err
	}
	return s.PrepareTxn(p)
}

// DecideTxn applies the coordinator's decision at this group. A commit
// enters the record log like any certified writeset; the replicas are
// synced so the fragment is immediately readable.
func (c *Cluster) DecideTxn(id string, commit bool) (int64, error) {
	s, err := c.twoPC()
	if err != nil {
		return 0, err
	}
	version, err := s.DecideTxn(id, commit)
	if err == nil && commit && !c.opts.AsyncApply {
		c.Sync()
	}
	return version, err
}

// ResolveTxn answers an in-doubt inquiry at this group (used when this
// group coordinated the transaction).
func (c *Cluster) ResolveTxn(id string) (bool, error) {
	s, err := c.twoPC()
	if err != nil {
		return false, err
	}
	return s.ResolveTxn(id)
}

// ForgetTxn retires a fully acknowledged decision at this group.
func (c *Cluster) ForgetTxn(id string) error {
	s, err := c.twoPC()
	if err != nil {
		return err
	}
	return s.ForgetTxn(id)
}

// live returns the current non-removed replicas in slot order.
func (c *Cluster) live() []*replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*replica, 0, len(c.slots))
	for i, r := range c.slots {
		if !c.balancer.Removed(i) {
			out = append(out, r)
		}
	}
	return out
}

// slot returns the replica at a balancer slot index.
func (c *Cluster) slot(i int) *replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.slots[i]
}

// liveAt returns the i-th live replica (removal renumbers the live
// view but never the slots).
func (c *Cluster) liveAt(i int) (*replica, error) {
	live := c.live()
	if i < 0 || i >= len(live) {
		return nil, fmt.Errorf("mm: replica %d out of range", i)
	}
	return live[i], nil
}

// Replicas returns the live replica count.
func (c *Cluster) Replicas() int { return len(c.live()) }

// Certifier exposes the local certification service for stats and
// failure injection in tests, or nil when an external CertService was
// injected via Options.Cert.
func (c *Cluster) Certifier() *certifier.Certifier {
	cert, _ := c.cert.(*certifier.Certifier)
	return cert
}

// CertSvc exposes the certification service the cluster uses,
// whatever its implementation.
func (c *Cluster) CertSvc() CertService { return c.cert }

// Transport returns the Paxos transport when the certifier is
// replicated, else nil.
func (c *Cluster) Transport() *paxos.LocalTransport { return c.transport }

// CreateTable creates the table on every replica.
func (c *Cluster) CreateTable(name string) error {
	for _, r := range c.live() {
		if err := r.db.CreateTable(name); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-fills a table identically on every replica (initial load,
// outside concurrency control).
func (c *Cluster) Load(table string, rows int, value func(int64) string) error {
	live := c.live()
	for _, r := range live {
		if err := r.db.BulkLoad(table, rows, value); err != nil {
			return err
		}
	}
	// The load bumped each replica's local version identically; the
	// certifier's global counter stays at zero, so the applied
	// counters remain aligned at zero as well.
	for _, r := range live {
		if err := r.ap.Reset(func(int64) (int64, error) { return 0, nil }); err != nil {
			return err
		}
	}
	return nil
}

// syncTo applies certified writesets up to the latest known version at
// replica r, in version order. The fetch happens outside the
// application lock: with an injected remote CertService, Since is a
// network round trip, and holding the apply lock across it would stall
// every Begin on this replica for the duration (the applier's version
// guards make the unlocked window safe against concurrent appliers).
func (c *Cluster) syncTo(r *replica) {
	if !r.ready.Load() {
		return // still installing its state transfer
	}
	r.ap.Apply(c.cert.Since(r.ap.Applied()))
}

// Sync applies all outstanding writesets everywhere.
func (c *Cluster) Sync() {
	for _, r := range c.live() {
		c.syncTo(r)
	}
}

// Applied returns the global version the ridx-th live replica has
// applied. The networked server's propagation loop uses it as the
// FetchSince cursor.
func (c *Cluster) Applied(ridx int) int64 {
	r, err := c.liveAt(ridx)
	if err != nil {
		panic(err)
	}
	return r.ap.Applied()
}

// Applier exposes the ridx-th live replica's apply stage — the
// networked server feeds its propagation pipeline through it and
// reports its stats.
func (c *Cluster) Applier(ridx int) *pipeline.Applier {
	r, err := c.liveAt(ridx)
	if err != nil {
		panic(err)
	}
	return r.ap
}

// ApplyRecords installs already-fetched certified records at the
// ridx-th live replica in version order: records at or below the
// applied version are skipped (duplicates from concurrent pulls are
// harmless) and a gap stops the run (the missing versions will arrive
// through a later pull). It returns the number of records applied.
func (c *Cluster) ApplyRecords(ridx int, recs []certifier.Record) int {
	r, err := c.liveAt(ridx)
	if err != nil {
		panic(err)
	}
	return r.ap.Apply(recs)
}

// LoadRows bulk-installs explicit row values [start, start+len(values))
// on every replica, bypassing concurrency control — the wire
// protocol's chunked initial-load path. Chunks must arrive in the same
// order on every replica of the networked cluster so local versions
// stay aligned; like Load, this must finish before traffic starts.
func (c *Cluster) LoadRows(table string, start int64, values []string) error {
	ws := writeset.FromRows(table, start, values)
	for _, r := range c.live() {
		err := r.ap.Reset(func(cur int64) (int64, error) {
			return cur, r.db.ApplyWriteset(ws, r.db.Version()+1)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// GC prunes the certification log up to the oldest version every
// replica has applied. Since a fresh transaction's snapshot is its
// replica's applied version, no live or future certification request
// can reference a pruned version. A replica mid-state-transfer pins
// the log at zero (its snapshot version is not yet known); removed
// replicas no longer count. It returns the number of log records
// removed.
func (c *Cluster) GC() int {
	oldest := int64(1<<62 - 1)
	for _, r := range c.live() {
		if !r.ready.Load() {
			oldest = 0
		} else if v := r.ap.Applied(); v < oldest {
			oldest = v
		}
	}
	if oldest <= 0 {
		return 0
	}
	// A remote certification service is pruned by its own host; only
	// a local certifier can be garbage-collected from here.
	if gc, ok := c.cert.(interface{ GC(int64) int }); ok {
		return gc.GC(oldest)
	}
	return 0
}

// TableDump snapshots the ridx-th live replica's table for
// convergence checks.
func (c *Cluster) TableDump(replicaIdx int, table string) (map[int64]string, error) {
	r, err := c.liveAt(replicaIdx)
	if err != nil {
		return nil, err
	}
	return r.db.Dump(table)
}

// dumpTables captures every table's contents; the caller pins the
// database (the replica's apply lock) so the dump is consistent with
// one point in the version order.
func dumpTables(db *sidb.DB) (map[string]map[int64]string, error) {
	tables := make(map[string]map[int64]string)
	for _, name := range db.Tables() {
		dump, err := db.Dump(name)
		if err != nil {
			return nil, err
		}
		tables[name] = dump
	}
	return tables, nil
}

// Snapshot captures a consistent full-state snapshot of the ridx-th
// live replica: every table's contents plus the applied version they
// are consistent at, so a joiner that installs the snapshot and then
// replays certified records > version reconstructs the replica
// exactly.
func (c *Cluster) Snapshot(ridx int) (int64, map[string]map[int64]string, error) {
	r, err := c.liveAt(ridx)
	if err != nil {
		return 0, nil, err
	}
	var applied int64
	var tables map[string]map[int64]string
	r.ap.Pin(func(v int64) {
		applied = v
		tables, err = dumpTables(r.db)
	})
	return applied, tables, err
}

// InstallSnapshot installs a snapshot into the ridx-th live replica
// and marks it ready: tables are created, contents applied outside
// concurrency control, and the applied cursor set to the snapshot
// version so catch-up resumes from there. It is the receiving half of
// the join state transfer.
func (c *Cluster) InstallSnapshot(ridx int, version int64, tables map[string]map[int64]string) error {
	r, err := c.liveAt(ridx)
	if err != nil {
		return err
	}
	return installSnapshot(r, version, tables)
}

// installSnapshot installs snapshot contents into r under its apply
// lock and marks it ready.
func installSnapshot(r *replica, version int64, tables map[string]map[int64]string) error {
	err := r.ap.Reset(func(int64) (int64, error) {
		for name, rows := range tables {
			if err := r.db.CreateTable(name); err != nil {
				return 0, err
			}
			entries := make([]writeset.Entry, 0, len(rows))
			for row, value := range rows {
				entries = append(entries, writeset.Entry{
					Key:   writeset.Key{Table: name, Row: row},
					Value: value,
				})
			}
			if len(entries) == 0 {
				continue
			}
			if err := r.db.ApplyWriteset(writeset.New(entries), r.db.Version()+1); err != nil {
				return 0, err
			}
		}
		return version, nil
	})
	if err != nil {
		return err
	}
	r.ready.Store(true)
	return nil
}

// RestoreDurable replays recovered durable state into the ridx-th
// live replica: fn rebuilds the local database under the application
// lock (typically a WAL replay followed by attaching the apply-time
// journal hook), and applied seeds the global propagation cursor, so
// catch-up resumes from the last journaled version over the ordinary
// Since/FetchSince path instead of a full snapshot transfer.
func (c *Cluster) RestoreDurable(ridx int, applied int64, fn func(db *sidb.DB) error) error {
	r, err := c.liveAt(ridx)
	if err != nil {
		return err
	}
	err = r.ap.Reset(func(cur int64) (int64, error) {
		if err := fn(r.db); err != nil {
			return 0, err
		}
		if applied > cur {
			cur = applied
		}
		return cur, nil
	})
	if err != nil {
		return err
	}
	r.ready.Store(true)
	return nil
}

// SnapshotDurable captures, atomically with writeset application, the
// state WAL compaction embeds: the applied global version, the local
// database version, and every table's contents.
func (c *Cluster) SnapshotDurable(ridx int) (applied, local int64, tables map[string]map[int64]string, err error) {
	r, err := c.liveAt(ridx)
	if err != nil {
		return 0, 0, nil, err
	}
	r.ap.Pin(func(v int64) {
		applied = v
		local = r.db.Version()
		tables, err = dumpTables(r.db)
	})
	return applied, local, tables, err
}

// AddReplica grows the cluster by one: a fresh node receives a
// consistent snapshot of the primary (slot 0), catches up on records
// certified during the copy, and only then starts taking traffic. It
// returns the new replica's slot index.
func (c *Cluster) AddReplica() (int, error) {
	r := newReplica(0, c.opts.ApplyWorkers)
	c.mu.Lock()
	idx := c.balancer.AddDown() // no traffic until the state transfer lands
	r.id = idx
	c.slots = append(c.slots, r)
	c.mu.Unlock()

	// The not-ready replica pins GC at zero (see GC), so every record
	// after the snapshot version stays fetchable during the transfer.
	version, tables, err := c.Snapshot(0)
	if err != nil {
		return 0, err
	}
	if err := installSnapshot(r, version, tables); err != nil {
		return 0, err
	}

	c.syncTo(r) // writeset catch-up for commits during the copy
	c.balancer.SetHealthy(idx, true)
	return idx, nil
}

// RemoveReplica retires the replica at slot idx: the balancer stops
// routing new transactions to it immediately; transactions already
// running there finish normally (their commits certify and propagate
// like any other). Slot 0 — the certifier-adjacent primary — cannot
// be removed.
func (c *Cluster) RemoveReplica(idx int) error {
	if idx == 0 {
		return fmt.Errorf("mm: replica 0 cannot be removed")
	}
	c.mu.RLock()
	ok := idx > 0 && idx < len(c.slots)
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("mm: replica %d out of range", idx)
	}
	if c.balancer.Removed(idx) {
		return fmt.Errorf("mm: replica %d already removed", idx)
	}
	c.balancer.Remove(idx)
	return nil
}

// Txn is a client transaction proxied onto one replica.
type Txn struct {
	cluster  *Cluster
	replica  *replica
	inner    *sidb.Txn
	snapshot int64  // global (certifier) version of the GSI snapshot
	version  int64  // global version assigned at commit (0 until then)
	trace    uint64 // cross-node trace id (0 untraced)
	readOnly bool
	done     bool
}

// SetTrace attaches the transaction's cross-node trace id; the commit
// path forwards it to the certification service so spans stitch
// end-to-end. Call before Commit.
func (t *Txn) SetTrace(trace uint64) { t.trace = trace }

var _ repl.Txn = (*Txn)(nil)

// BeginRead starts a read-only transaction at the least-loaded
// replica.
func (c *Cluster) BeginRead() (repl.Txn, error) { return c.begin(true) }

// BeginUpdate starts an update transaction at the least-loaded
// replica.
func (c *Cluster) BeginUpdate() (repl.Txn, error) { return c.begin(false) }

func (c *Cluster) begin(readOnly bool) (repl.Txn, error) {
	idx := c.balancer.Acquire()
	r := c.slot(idx)
	// GSI: the snapshot is whatever the replica has applied; no
	// communication with the certifier is needed to begin. Taking the
	// applied cursor and the local snapshot under the apply lock pins
	// them to the same point in the version order — a writeset applied
	// a moment later must count as concurrent.
	var snapshot int64
	var inner *sidb.Txn
	r.ap.Pin(func(applied int64) {
		snapshot = applied
		inner = r.db.Begin()
	})
	return &Txn{cluster: c, replica: r, inner: inner, snapshot: snapshot, readOnly: readOnly}, nil
}

// Read implements repl.Txn.
func (t *Txn) Read(table string, row int64) (string, bool, error) {
	return t.inner.Read(table, row)
}

// Write implements repl.Txn. With eager certification enabled the
// partial writeset is checked against the certifier immediately and a
// doomed transaction aborts early with repl.ErrAborted.
func (t *Txn) Write(table string, row int64, value string) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	if err := t.inner.Write(table, row, value); err != nil {
		return err
	}
	if t.cluster.opts.EagerCertification {
		partial := writeset.Writeset{Entries: []writeset.Entry{
			{Key: writeset.Key{Table: table, Row: row}, Value: value},
		}}
		if conflict, with := t.cluster.cert.Check(t.snapshot, partial); conflict {
			return &repl.AbortedError{ConflictWith: with}
		}
	}
	return nil
}

// Delete implements repl.Txn.
func (t *Txn) Delete(table string, row int64) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Delete(table, row)
}

// Commit implements repl.Txn: read-only transactions commit locally;
// update transactions extract their writeset, invoke the certifier
// with (writeset, snapshot version), and on success the commit is
// acknowledged once the writeset is durable at the certifier. The
// writeset is then applied at every replica in commit order.
func (t *Txn) Commit() error {
	if t.done {
		return sidb.ErrTxnDone
	}
	t.done = true
	defer t.cluster.balancer.Release(t.replica.id)

	ws := t.inner.Writeset()
	if ws.Empty() {
		// Read-only: commit immediately at the proxy (§5.1).
		_, _, err := t.inner.Commit()
		return err
	}
	snapshot := t.snapshot
	outcome, err := t.cluster.certify(snapshot, ws, t.trace)
	if err != nil {
		t.inner.Abort()
		return err
	}
	if !outcome.Committed {
		t.inner.Abort()
		return &repl.AbortedError{ConflictWith: outcome.ConflictWith}
	}
	t.version = outcome.Version
	// The transaction is durably committed. Discard the local
	// speculative state; with AsyncApply the propagation path installs
	// the writeset, otherwise install it in version order at the
	// origin now (and lazily everywhere else).
	t.inner.Abort()
	if t.cluster.opts.AsyncApply {
		return nil
	}
	t.cluster.syncTo(t.replica)
	// Propagate to the remaining replicas.
	for _, r := range t.cluster.live() {
		if r != t.replica {
			t.cluster.syncTo(r)
		}
	}
	return nil
}

// HasWrites reports whether the transaction has staged any writes —
// the router's test for whether this group is a real participant of a
// cross-shard commit or just a read-side bystander.
func (t *Txn) HasWrites() bool {
	if t.done || t.readOnly {
		return false
	}
	return !t.inner.Writeset().Empty()
}

// Prepare runs the first 2PC phase for this transaction's writeset as
// one fragment of cross-shard transaction id, coordinated by shard
// group coord. The local speculative state is discarded either way —
// on a yes-vote the fragment lives on, locked and journaled, in the
// group's certifier until the coordinator's decision arrives via
// Cluster.DecideTxn. An empty writeset votes yes with nothing to lock.
func (t *Txn) Prepare(id string, coord int64) (vote bool, conflictWith int64, err error) {
	if t.done {
		return false, 0, sidb.ErrTxnDone
	}
	t.done = true
	defer t.cluster.balancer.Release(t.replica.id)
	ws := t.inner.Writeset()
	t.inner.Abort()
	if ws.Empty() {
		return true, 0, nil
	}
	return t.cluster.PrepareTxn(certifier.PreparedTxn{
		ID: id, Coord: coord, Snapshot: t.snapshot, Writeset: ws,
	})
}

// CommitVersion returns the global version a successful update commit
// was assigned, or 0 for read-only transactions and before Commit —
// the hook the networked server uses to stamp the ack stage on the
// transaction's trace span.
func (t *Txn) CommitVersion() int64 { return t.version }

// Abort implements repl.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.inner.Abort()
	t.cluster.balancer.Release(t.replica.id)
}

var _ repl.System = (*Cluster)(nil)
var _ repl.Loader = (*Cluster)(nil)
