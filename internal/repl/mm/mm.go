// Package mm implements the multi-master replicated database of §5.1
// (Tashkent-style): every replica executes both read-only and update
// transactions against its local snapshot-isolated database; a proxy
// extracts writesets eagerly, a replicated certifier detects
// system-wide write-write conflicts and assigns global versions, and
// committed writesets are propagated to all other replicas and applied
// in commit order.
//
// Under generalized snapshot isolation a transaction's snapshot is the
// latest version its replica has applied — possibly older than the
// globally latest — so it is available without communication; the
// certifier closes the gap at commit time.
package mm

import (
	"fmt"
	"sync"

	"repro/internal/certifier"
	"repro/internal/lb"
	"repro/internal/paxos"
	"repro/internal/repl"
	"repro/internal/sidb"
	"repro/internal/writeset"
)

// CertService is the certification surface the cluster depends on:
// commit-time certification, the eager conflict probe, and writeset
// retrieval for propagation. A local *certifier.Certifier satisfies it
// directly; the networked server injects a remote implementation that
// speaks the wire protocol to the certifier host, which is how a
// single-replica Cluster becomes one node of a multi-process
// multi-master system.
type CertService interface {
	// Certify submits a commit-time certification request.
	Certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error)
	// Check probes a partial writeset for an already-certain conflict
	// (eager certification, §5.1) without committing anything.
	Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64)
	// Since returns every certified record with version > v in
	// ascending version order.
	Since(v int64) []certifier.Record
}

// Options configure a multi-master cluster.
type Options struct {
	// Replicas is the number of database replicas (>= 1).
	Replicas int
	// ReplicatedCertifier runs the certifier over a 3-node Paxos group
	// (leader + two backups), as in the paper's deployment.
	ReplicatedCertifier bool
	// EagerCertification makes the proxy certify partial writesets on
	// every write, aborting doomed transactions early (§5.1). Commit
	// certification happens regardless.
	EagerCertification bool
	// GroupCommit routes commit certification through a batching
	// front end that amortizes one Paxos round (and one certifier
	// lock acquisition) over all concurrently committing transactions,
	// the way the paper's certifier logs writesets in batches (§6.3).
	// Decisions are identical to sequential certification.
	GroupCommit bool
	// MaxBatch caps one group commit; zero selects the certifier's
	// default. Ignored unless GroupCommit is set.
	MaxBatch int
	// Cert injects an external certification service — typically a
	// remote certifier reached over the wire protocol. When set,
	// ReplicatedCertifier, GroupCommit and MaxBatch are ignored: the
	// injected service owns those concerns.
	Cert CertService
	// AsyncApply acknowledges a commit as soon as its writeset is
	// durable at the certifier, leaving application at the origin
	// replica to the background propagation path (Sync/ApplyRecords)
	// like every other replica — the paper's commit rule (§5.1).
	// The networked server sets this on non-certifier nodes so a
	// commit does not re-download the unapplied backlog its puller is
	// already fetching; the trade is that the next transaction on the
	// same replica may not yet see this commit (GSI allows that).
	AsyncApply bool
}

// replica is one database node plus its proxy state.
type replica struct {
	id int
	db *sidb.DB

	mu      sync.Mutex // serializes writeset application
	applied int64      // highest version applied locally
}

// Cluster is a running multi-master system.
type Cluster struct {
	opts      Options
	replicas  []*replica
	cert      CertService
	batcher   *certifier.Batcher    // nil unless GroupCommit
	transport *paxos.LocalTransport // nil unless replicated
	balancer  *lb.Balancer
}

// New creates a multi-master cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("mm: %d replicas", opts.Replicas)
	}
	c := &Cluster{opts: opts, balancer: lb.New(opts.Replicas)}
	for i := 0; i < opts.Replicas; i++ {
		c.replicas = append(c.replicas, &replica{id: i, db: sidb.New()})
	}
	switch {
	case opts.Cert != nil:
		c.cert = opts.Cert
	case opts.ReplicatedCertifier:
		cert, tr, err := certifier.NewReplicated(3)
		if err != nil {
			return nil, err
		}
		c.cert, c.transport = cert, tr
		if opts.GroupCommit {
			c.batcher = certifier.NewBatcher(cert, opts.MaxBatch)
		}
	default:
		cert := certifier.New()
		c.cert = cert
		if opts.GroupCommit {
			c.batcher = certifier.NewBatcher(cert, opts.MaxBatch)
		}
	}
	return c, nil
}

// certify submits one commit-time certification request, through the
// group-commit batcher when enabled.
func (c *Cluster) certify(snapshot int64, ws writeset.Writeset) (certifier.Outcome, error) {
	if c.batcher != nil {
		return c.batcher.Certify(snapshot, ws)
	}
	return c.cert.Certify(snapshot, ws)
}

// Replicas returns the replica count.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Certifier exposes the local certification service for stats and
// failure injection in tests, or nil when an external CertService was
// injected via Options.Cert.
func (c *Cluster) Certifier() *certifier.Certifier {
	cert, _ := c.cert.(*certifier.Certifier)
	return cert
}

// CertSvc exposes the certification service the cluster uses,
// whatever its implementation.
func (c *Cluster) CertSvc() CertService { return c.cert }

// Transport returns the Paxos transport when the certifier is
// replicated, else nil.
func (c *Cluster) Transport() *paxos.LocalTransport { return c.transport }

// CreateTable creates the table on every replica.
func (c *Cluster) CreateTable(name string) error {
	for _, r := range c.replicas {
		if err := r.db.CreateTable(name); err != nil {
			return err
		}
	}
	return nil
}

// Load bulk-fills a table identically on every replica (initial load,
// outside concurrency control).
func (c *Cluster) Load(table string, rows int, value func(int64) string) error {
	for _, r := range c.replicas {
		if err := r.db.BulkLoad(table, rows, value); err != nil {
			return err
		}
	}
	// The load bumped each replica's local version identically; the
	// certifier's global counter stays at zero, so the applied
	// counters remain aligned at zero as well.
	for _, r := range c.replicas {
		r.applied = 0
	}
	return nil
}

// syncTo applies certified writesets up to the latest known version at
// replica r, in version order. The fetch happens outside the
// application lock: with an injected remote CertService, Since is a
// network round trip, and holding r.mu across it would stall every
// Begin on this replica for the duration (ApplyRecords' version guards
// make the unlocked window safe against concurrent appliers).
func (c *Cluster) syncTo(r *replica) {
	r.mu.Lock()
	v := r.applied
	r.mu.Unlock()
	c.ApplyRecords(r.id, c.cert.Since(v))
}

// Sync applies all outstanding writesets everywhere.
func (c *Cluster) Sync() {
	for _, r := range c.replicas {
		c.syncTo(r)
	}
}

// Applied returns the global version replica ridx has applied. The
// networked server's propagation loop uses it as the FetchSince
// cursor.
func (c *Cluster) Applied(ridx int) int64 {
	r := c.replicas[ridx]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// ApplyRecords installs already-fetched certified records at replica
// ridx in version order: records at or below the applied version are
// skipped (duplicates from concurrent pulls are harmless) and a gap
// stops the run (the missing versions will arrive through a later
// pull). It returns the number of records applied.
func (c *Cluster) ApplyRecords(ridx int, recs []certifier.Record) int {
	r := c.replicas[ridx]
	r.mu.Lock()
	defer r.mu.Unlock()
	applied := 0
	for _, rec := range recs {
		if rec.Version <= r.applied {
			continue
		}
		if rec.Version != r.applied+1 {
			break
		}
		if err := r.db.ApplyWriteset(rec.Writeset, r.db.Version()+1); err != nil {
			panic(fmt.Sprintf("mm: replica %d failed to apply version %d: %v", r.id, rec.Version, err))
		}
		r.applied = rec.Version
		applied++
	}
	return applied
}

// LoadRows bulk-installs explicit row values [start, start+len(values))
// on every replica, bypassing concurrency control — the wire
// protocol's chunked initial-load path. Chunks must arrive in the same
// order on every replica of the networked cluster so local versions
// stay aligned; like Load, this must finish before traffic starts.
func (c *Cluster) LoadRows(table string, start int64, values []string) error {
	ws := writeset.FromRows(table, start, values)
	for _, r := range c.replicas {
		if err := r.db.ApplyWriteset(ws, r.db.Version()+1); err != nil {
			return err
		}
	}
	return nil
}

// GC prunes the certification log up to the oldest version every
// replica has applied. Since a fresh transaction's snapshot is its
// replica's applied version, no live or future certification request
// can reference a pruned version. It returns the number of log
// records removed.
func (c *Cluster) GC() int {
	oldest := int64(1<<62 - 1)
	for _, r := range c.replicas {
		r.mu.Lock()
		if r.applied < oldest {
			oldest = r.applied
		}
		r.mu.Unlock()
	}
	if oldest <= 0 {
		return 0
	}
	// A remote certification service is pruned by its own host; only
	// a local certifier can be garbage-collected from here.
	if gc, ok := c.cert.(interface{ GC(int64) int }); ok {
		return gc.GC(oldest)
	}
	return 0
}

// TableDump snapshots a replica's table for convergence checks.
func (c *Cluster) TableDump(replicaIdx int, table string) (map[int64]string, error) {
	if replicaIdx < 0 || replicaIdx >= len(c.replicas) {
		return nil, fmt.Errorf("mm: replica %d out of range", replicaIdx)
	}
	return c.replicas[replicaIdx].db.Dump(table)
}

// Txn is a client transaction proxied onto one replica.
type Txn struct {
	cluster  *Cluster
	replica  *replica
	inner    *sidb.Txn
	snapshot int64 // global (certifier) version of the GSI snapshot
	readOnly bool
	done     bool
}

var _ repl.Txn = (*Txn)(nil)

// BeginRead starts a read-only transaction at the least-loaded
// replica.
func (c *Cluster) BeginRead() (repl.Txn, error) { return c.begin(true) }

// BeginUpdate starts an update transaction at the least-loaded
// replica.
func (c *Cluster) BeginUpdate() (repl.Txn, error) { return c.begin(false) }

func (c *Cluster) begin(readOnly bool) (repl.Txn, error) {
	idx := c.balancer.Acquire()
	r := c.replicas[idx]
	// GSI: the snapshot is whatever the replica has applied; no
	// communication with the certifier is needed to begin. Taking the
	// applied counter and the local snapshot under the application
	// lock pins them to the same point in the version order — a
	// writeset applied a moment later must count as concurrent.
	r.mu.Lock()
	snapshot := r.applied
	inner := r.db.Begin()
	r.mu.Unlock()
	return &Txn{cluster: c, replica: r, inner: inner, snapshot: snapshot, readOnly: readOnly}, nil
}

// Read implements repl.Txn.
func (t *Txn) Read(table string, row int64) (string, bool, error) {
	return t.inner.Read(table, row)
}

// Write implements repl.Txn. With eager certification enabled the
// partial writeset is checked against the certifier immediately and a
// doomed transaction aborts early with repl.ErrAborted.
func (t *Txn) Write(table string, row int64, value string) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	if err := t.inner.Write(table, row, value); err != nil {
		return err
	}
	if t.cluster.opts.EagerCertification {
		partial := writeset.Writeset{Entries: []writeset.Entry{
			{Key: writeset.Key{Table: table, Row: row}, Value: value},
		}}
		if conflict, with := t.cluster.cert.Check(t.snapshot, partial); conflict {
			return &repl.AbortedError{ConflictWith: with}
		}
	}
	return nil
}

// Delete implements repl.Txn.
func (t *Txn) Delete(table string, row int64) error {
	if t.readOnly {
		return repl.ErrReadOnlyTxn
	}
	return t.inner.Delete(table, row)
}

// Commit implements repl.Txn: read-only transactions commit locally;
// update transactions extract their writeset, invoke the certifier
// with (writeset, snapshot version), and on success the commit is
// acknowledged once the writeset is durable at the certifier. The
// writeset is then applied at every replica in commit order.
func (t *Txn) Commit() error {
	if t.done {
		return sidb.ErrTxnDone
	}
	t.done = true
	defer t.cluster.balancer.Release(t.replica.id)

	ws := t.inner.Writeset()
	if ws.Empty() {
		// Read-only: commit immediately at the proxy (§5.1).
		_, _, err := t.inner.Commit()
		return err
	}
	snapshot := t.snapshot
	outcome, err := t.cluster.certify(snapshot, ws)
	if err != nil {
		t.inner.Abort()
		return err
	}
	if !outcome.Committed {
		t.inner.Abort()
		return &repl.AbortedError{ConflictWith: outcome.ConflictWith}
	}
	// The transaction is durably committed. Discard the local
	// speculative state; with AsyncApply the propagation path installs
	// the writeset, otherwise install it in version order at the
	// origin now (and lazily everywhere else).
	t.inner.Abort()
	if t.cluster.opts.AsyncApply {
		return nil
	}
	t.cluster.syncTo(t.replica)
	// Propagate to the remaining replicas.
	for _, r := range t.cluster.replicas {
		if r != t.replica {
			t.cluster.syncTo(r)
		}
	}
	return nil
}

// Abort implements repl.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.inner.Abort()
	t.cluster.balancer.Release(t.replica.id)
}

var _ repl.System = (*Cluster)(nil)
var _ repl.Loader = (*Cluster)(nil)
