package elastic

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Stage indexes into Sample.StageCounts and Load.StageMeans. They
// mirror pipeline.Stage* and are kept literal so the model layer does
// not depend on the replication pipeline.
const (
	stageCertify = 0
	stagePaxos   = 1
	stageJournal = 2
	stageFsync   = 3
	stageApply   = 4
	stageAck     = 5
)

// Sample is a cumulative snapshot of cluster-wide serving counters,
// summed over every current member: per-class commit counts, summed
// client-visible latencies, and certification aborts. Counters only
// grow on a fixed membership; the profiler differences successive
// samples into a windowed live profile and discards windows broken by
// membership churn (a departed replica's counters vanish from the
// sum).
type Sample struct {
	When          time.Time
	ReadCommits   int64
	UpdateCommits int64
	Aborts        int64
	ReadNs        int64
	UpdateNs      int64
	// Members is the number of replicas the counters were summed over
	// — the N the model residual exporter evaluates PredictMM at.
	Members int
	// StageCounts / StageNs are the cluster-summed commit-path stage
	// breakdown (pipeline.Stage* order: certify, paxos, journal,
	// fsync, apply, ack). Zero everywhere when tracing is disabled.
	StageCounts [6]int64
	StageNs     [6]int64
	// Cohort identifies the member set the counters were summed over
	// (e.g. the sorted polled addresses). Two samples are only
	// comparable within one cohort: a member missing from the sum —
	// departed, or just a dropped Stats poll — would otherwise first
	// look like a regression and then, once it answers again, credit
	// its whole cumulative history to a single window.
	Cohort string
}

// Load is the windowed live workload profile the controller feeds to
// the MVA model: measured rates, per-class mean latencies, the live
// abort fraction, and a Little's-law estimate of the offered
// closed-loop client population.
type Load struct {
	Interval   time.Duration
	Throughput float64 // total commits/second
	ReadRate   float64
	UpdateRate float64
	MeanRead   float64 // seconds
	MeanUpdate float64 // seconds
	AbortRate  float64 // aborts / (aborts + update commits)
	// Clients estimates the concurrent closed-loop population N from
	// Little's law, N = X·(R+Z): the live analogue of the per-replica
	// client count C the paper's model takes as given (§3.2).
	Clients float64
	// Members is the replica count the window's counters covered.
	Members int
	// StageMeans holds the windowed mean per-writeset latency of each
	// commit-path stage in seconds (pipeline.Stage* order); zero for
	// stages with no observations this window (or tracing disabled).
	StageMeans [6]float64
}

// Profiler turns cumulative samples into Load windows and MVA model
// parameters. The service demands rc, wc, ws come from a standalone
// calibration profile (§4.1.1, e.g. internal/profiler output or the
// workload tables) — the paper's premise is that demands are
// workload properties measurable without the replicated system —
// while everything the live system can observe about itself (mix
// fractions, abort rate, conflict window L1, offered population) is
// refreshed from the samples.
type Profiler struct {
	mu    sync.Mutex
	base  workload.Mix
	think float64
	have  bool
	prev  Sample
}

// NewProfiler creates a profiler over a standalone-calibrated base
// mix. think overrides the mix's think time when positive (the live
// deployment's clients may not match the benchmark's 1 s think).
func NewProfiler(base workload.Mix, think float64) *Profiler {
	if think <= 0 {
		think = base.Think
	}
	return &Profiler{base: base, think: think}
}

// Reset forgets the previous sample (after membership churn).
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.have = false
	p.mu.Unlock()
}

// Observe folds in one cumulative sample. It returns the Load over
// the window since the previous sample, or ok=false when there is no
// usable window yet: the first sample, a zero-length interval, a
// cohort change (membership churn or a dropped per-member poll), or
// a counter that moved backwards. Unusable windows are discarded and
// the baseline reset.
func (p *Profiler) Observe(s Sample) (Load, bool) {
	p.mu.Lock()
	prev, had := p.prev, p.have
	p.prev, p.have = s, true
	think := p.think
	p.mu.Unlock()
	if !had || s.Cohort != prev.Cohort {
		return Load{}, false
	}
	dt := s.When.Sub(prev.When)
	dRead := s.ReadCommits - prev.ReadCommits
	dUpdate := s.UpdateCommits - prev.UpdateCommits
	dAborts := s.Aborts - prev.Aborts
	dReadNs := s.ReadNs - prev.ReadNs
	dUpdateNs := s.UpdateNs - prev.UpdateNs
	if dt <= 0 || dRead < 0 || dUpdate < 0 || dAborts < 0 || dReadNs < 0 || dUpdateNs < 0 {
		return Load{}, false
	}
	l := Load{
		Interval:   dt,
		ReadRate:   float64(dRead) / dt.Seconds(),
		UpdateRate: float64(dUpdate) / dt.Seconds(),
	}
	l.Throughput = l.ReadRate + l.UpdateRate
	if dRead > 0 {
		l.MeanRead = float64(dReadNs) / float64(dRead) / 1e9
	}
	if dUpdate > 0 {
		l.MeanUpdate = float64(dUpdateNs) / float64(dUpdate) / 1e9
	}
	if dAborts+dUpdate > 0 {
		l.AbortRate = float64(dAborts) / float64(dAborts+dUpdate)
	}
	// Little's law over the closed loop: each client cycles through
	// one transaction (mean response R, weighted by class) plus think.
	if l.Throughput > 0 {
		r := (l.MeanRead*l.ReadRate + l.MeanUpdate*l.UpdateRate) / l.Throughput
		l.Clients = l.Throughput * (r + think)
	}
	l.Members = s.Members
	// Stage means are advisory: a stage counter moving backwards (a
	// restarted replica inside an otherwise stable cohort) zeroes that
	// stage rather than discarding the whole window.
	for i := range l.StageMeans {
		dc := s.StageCounts[i] - prev.StageCounts[i]
		dns := s.StageNs[i] - prev.StageNs[i]
		if dc > 0 && dns >= 0 {
			l.StageMeans[i] = float64(dns) / float64(dc) / 1e9
		}
	}
	return l, true
}

// maxAbort caps the live abort estimate fed to the model: the MVA
// retry inflation 1/(1-A) diverges as A approaches 1, and a transient
// measurement artifact must not be able to demand infinite capacity.
const maxAbort = 0.5

// Params builds the multi-master model inputs (§3.3.2) for a Load:
// base demands with the live mix fractions, live abort probability
// and live conflict window. Mix.Clients is left at the base value —
// the controller overrides it per candidate replica count.
func (p *Profiler) Params(l Load) core.Params {
	p.mu.Lock()
	mix := p.base
	think := p.think
	p.mu.Unlock()
	mix.Think = think
	if l.Throughput > 0 {
		mix.Pr = l.ReadRate / l.Throughput
		mix.Pw = 1 - mix.Pr
	}
	if mix.Pw > 0 && l.AbortRate > 0 {
		a := l.AbortRate
		if a > maxAbort {
			a = maxAbort
		}
		mix.A1 = a
	}
	params := core.Params{
		Mix:       mix,
		L1:        l.MeanUpdate,
		LBDelay:   core.DefaultLBDelay,
		CertDelay: core.DefaultCertDelay,
	}
	if params.L1 == 0 && mix.Pw > 0 {
		params.L1 = core.EstimateL1(params)
	}
	return params
}

// Demands carries per-class service demand measurements for
// recalibration. Zero-valued resource entries mean "no measurement":
// Recalibrate leaves the corresponding calibrated demand untouched.
type Demands struct {
	RC workload.Demand // read-only transaction demand
	WC workload.Demand // update transaction demand
	WS workload.Demand // propagated writeset demand
}

// demandEWMA is the weight of the newest live measurement when folding
// into the calibrated base demands. Live windows are noisy (they
// include queueing, and short windows carry few transactions), so the
// calibrated profile dominates and live data corrects it gradually.
const demandEWMA = 0.3

// LiveDemands derives approximate per-class service demands from one
// observed window, using the commit-path stage breakdown exported by
// the servers' tracers. The derivation follows the paper's resource
// mapping (§4.1.1): certification, apply, and ack burn replica CPU,
// while the journal append and fsync are the disk visit. Read-only
// transactions never enter the commit path, so their whole measured
// latency is charged to CPU — an upper bound that includes queueing
// and therefore tightens as the system idles. ok=false when the
// window carries no usable stage data (tracing disabled, or an idle
// window).
func LiveDemands(l Load) (Demands, bool) {
	var d Demands
	ok := false
	if l.MeanRead > 0 {
		d.RC[workload.CPU] = l.MeanRead
		ok = true
	}
	wsCPU := l.StageMeans[stageApply]
	wsDisk := l.StageMeans[stageJournal] + l.StageMeans[stageFsync]
	if wsCPU > 0 || wsDisk > 0 {
		d.WS[workload.CPU] = wsCPU
		d.WS[workload.Disk] = wsDisk
		ok = true
	}
	wcCPU := l.StageMeans[stageCertify] + l.StageMeans[stagePaxos] +
		l.StageMeans[stageApply] + l.StageMeans[stageAck]
	if wcCPU > 0 || wsDisk > 0 {
		d.WC[workload.CPU] = wcCPU
		d.WC[workload.Disk] = wsDisk
		ok = true
	}
	return d, ok
}

// Recalibrate folds live-measured service demands into the calibrated
// base profile through an EWMA, so the MVA predictor (and the residual
// monitor built on the same profiler) runs against demands the real
// server exhibited rather than the standalone calibration alone.
// Zero-valued entries leave the calibrated value untouched.
func (p *Profiler) Recalibrate(d Demands) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fold := func(base *workload.Demand, live workload.Demand) {
		for r := range live {
			if live[r] > 0 {
				base[r] = (1-demandEWMA)*base[r] + demandEWMA*live[r]
			}
		}
	}
	fold(&p.base.RC, d.RC)
	fold(&p.base.WC, d.WC)
	fold(&p.base.WS, d.WS)
}

// Demands reports the profiler's current per-class service demands
// (calibrated base folded with any live recalibration), for status
// displays and tests.
func (p *Profiler) Demands() Demands {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Demands{RC: p.base.RC, WC: p.base.WC, WS: p.base.WS}
}
