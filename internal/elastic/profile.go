package elastic

import (
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Sample is a cumulative snapshot of cluster-wide serving counters,
// summed over every current member: per-class commit counts, summed
// client-visible latencies, and certification aborts. Counters only
// grow on a fixed membership; the profiler differences successive
// samples into a windowed live profile and discards windows broken by
// membership churn (a departed replica's counters vanish from the
// sum).
type Sample struct {
	When          time.Time
	ReadCommits   int64
	UpdateCommits int64
	Aborts        int64
	ReadNs        int64
	UpdateNs      int64
	// Members is the number of replicas the counters were summed over
	// — the N the model residual exporter evaluates PredictMM at.
	Members int
	// StageCounts / StageNs are the cluster-summed commit-path stage
	// breakdown (pipeline.Stage* order: certify, paxos, journal,
	// fsync, apply, ack). Zero everywhere when tracing is disabled.
	StageCounts [6]int64
	StageNs     [6]int64
	// Cohort identifies the member set the counters were summed over
	// (e.g. the sorted polled addresses). Two samples are only
	// comparable within one cohort: a member missing from the sum —
	// departed, or just a dropped Stats poll — would otherwise first
	// look like a regression and then, once it answers again, credit
	// its whole cumulative history to a single window.
	Cohort string
}

// Load is the windowed live workload profile the controller feeds to
// the MVA model: measured rates, per-class mean latencies, the live
// abort fraction, and a Little's-law estimate of the offered
// closed-loop client population.
type Load struct {
	Interval   time.Duration
	Throughput float64 // total commits/second
	ReadRate   float64
	UpdateRate float64
	MeanRead   float64 // seconds
	MeanUpdate float64 // seconds
	AbortRate  float64 // aborts / (aborts + update commits)
	// Clients estimates the concurrent closed-loop population N from
	// Little's law, N = X·(R+Z): the live analogue of the per-replica
	// client count C the paper's model takes as given (§3.2).
	Clients float64
	// Members is the replica count the window's counters covered.
	Members int
	// StageMeans holds the windowed mean per-writeset latency of each
	// commit-path stage in seconds (pipeline.Stage* order); zero for
	// stages with no observations this window (or tracing disabled).
	StageMeans [6]float64
}

// Profiler turns cumulative samples into Load windows and MVA model
// parameters. The service demands rc, wc, ws come from a standalone
// calibration profile (§4.1.1, e.g. internal/profiler output or the
// workload tables) — the paper's premise is that demands are
// workload properties measurable without the replicated system —
// while everything the live system can observe about itself (mix
// fractions, abort rate, conflict window L1, offered population) is
// refreshed from the samples.
type Profiler struct {
	base  workload.Mix
	think float64
	have  bool
	prev  Sample
}

// NewProfiler creates a profiler over a standalone-calibrated base
// mix. think overrides the mix's think time when positive (the live
// deployment's clients may not match the benchmark's 1 s think).
func NewProfiler(base workload.Mix, think float64) *Profiler {
	if think <= 0 {
		think = base.Think
	}
	return &Profiler{base: base, think: think}
}

// Reset forgets the previous sample (after membership churn).
func (p *Profiler) Reset() { p.have = false }

// Observe folds in one cumulative sample. It returns the Load over
// the window since the previous sample, or ok=false when there is no
// usable window yet: the first sample, a zero-length interval, a
// cohort change (membership churn or a dropped per-member poll), or
// a counter that moved backwards. Unusable windows are discarded and
// the baseline reset.
func (p *Profiler) Observe(s Sample) (Load, bool) {
	prev, had := p.prev, p.have
	p.prev, p.have = s, true
	if !had || s.Cohort != prev.Cohort {
		return Load{}, false
	}
	dt := s.When.Sub(prev.When)
	dRead := s.ReadCommits - prev.ReadCommits
	dUpdate := s.UpdateCommits - prev.UpdateCommits
	dAborts := s.Aborts - prev.Aborts
	dReadNs := s.ReadNs - prev.ReadNs
	dUpdateNs := s.UpdateNs - prev.UpdateNs
	if dt <= 0 || dRead < 0 || dUpdate < 0 || dAborts < 0 || dReadNs < 0 || dUpdateNs < 0 {
		return Load{}, false
	}
	l := Load{
		Interval:   dt,
		ReadRate:   float64(dRead) / dt.Seconds(),
		UpdateRate: float64(dUpdate) / dt.Seconds(),
	}
	l.Throughput = l.ReadRate + l.UpdateRate
	if dRead > 0 {
		l.MeanRead = float64(dReadNs) / float64(dRead) / 1e9
	}
	if dUpdate > 0 {
		l.MeanUpdate = float64(dUpdateNs) / float64(dUpdate) / 1e9
	}
	if dAborts+dUpdate > 0 {
		l.AbortRate = float64(dAborts) / float64(dAborts+dUpdate)
	}
	// Little's law over the closed loop: each client cycles through
	// one transaction (mean response R, weighted by class) plus think.
	if l.Throughput > 0 {
		r := (l.MeanRead*l.ReadRate + l.MeanUpdate*l.UpdateRate) / l.Throughput
		l.Clients = l.Throughput * (r + p.think)
	}
	l.Members = s.Members
	// Stage means are advisory: a stage counter moving backwards (a
	// restarted replica inside an otherwise stable cohort) zeroes that
	// stage rather than discarding the whole window.
	for i := range l.StageMeans {
		dc := s.StageCounts[i] - prev.StageCounts[i]
		dns := s.StageNs[i] - prev.StageNs[i]
		if dc > 0 && dns >= 0 {
			l.StageMeans[i] = float64(dns) / float64(dc) / 1e9
		}
	}
	return l, true
}

// maxAbort caps the live abort estimate fed to the model: the MVA
// retry inflation 1/(1-A) diverges as A approaches 1, and a transient
// measurement artifact must not be able to demand infinite capacity.
const maxAbort = 0.5

// Params builds the multi-master model inputs (§3.3.2) for a Load:
// base demands with the live mix fractions, live abort probability
// and live conflict window. Mix.Clients is left at the base value —
// the controller overrides it per candidate replica count.
func (p *Profiler) Params(l Load) core.Params {
	mix := p.base
	mix.Think = p.think
	if l.Throughput > 0 {
		mix.Pr = l.ReadRate / l.Throughput
		mix.Pw = 1 - mix.Pr
	}
	if mix.Pw > 0 && l.AbortRate > 0 {
		a := l.AbortRate
		if a > maxAbort {
			a = maxAbort
		}
		mix.A1 = a
	}
	params := core.Params{
		Mix:       mix,
		L1:        l.MeanUpdate,
		LBDelay:   core.DefaultLBDelay,
		CertDelay: core.DefaultCertDelay,
	}
	if params.L1 == 0 && mix.Pw > 0 {
		params.L1 = core.EstimateL1(params)
	}
	return params
}
