package elastic

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

func TestEvalModel(t *testing.T) {
	p := NewProfiler(workload.TPCWShopping(), 0.1)
	load := Load{
		Interval:   2 * time.Second,
		Throughput: 100, ReadRate: 80, UpdateRate: 20,
		MeanRead: 0.020, MeanUpdate: 0.050,
		AbortRate: 0.02,
		Clients:   100 * (0.026 + 0.1),
	}

	me, ok := EvalModel(p, load, 2)
	if !ok {
		t.Fatal("EvalModel returned no evaluation")
	}
	if me.Replicas != 2 || me.ObservedTPS != 100 {
		t.Fatalf("me = %+v", me)
	}
	if me.PredictedTPS <= 0 {
		t.Fatalf("predicted tps = %v, want > 0", me.PredictedTPS)
	}
	// observed mean latency = (0.020·80 + 0.050·20)/100 = 0.026
	if me.ObservedLatency < 0.026-1e-9 || me.ObservedLatency > 0.026+1e-9 {
		t.Fatalf("observed latency = %v, want 0.026", me.ObservedLatency)
	}
	wantErr := (me.PredictedTPS - 100) / 100
	if me.TPSError != wantErr {
		t.Fatalf("tps error = %v, want %v", me.TPSError, wantErr)
	}

	// Degenerate windows evaluate to nothing.
	if _, ok := EvalModel(p, Load{}, 2); ok {
		t.Fatal("empty load evaluated")
	}
	if _, ok := EvalModel(p, load, 0); ok {
		t.Fatal("zero replicas evaluated")
	}
}

func TestMonitorExportsResiduals(t *testing.T) {
	reg := obs.NewRegistry()
	// Two samples a second apart: 100 reads + 50 updates committed on
	// a 2-member cohort.
	samples := []Sample{
		{When: at(1), Cohort: "a,b", Members: 2},
		{When: at(2), Cohort: "a,b", Members: 2,
			ReadCommits: 100, UpdateCommits: 50,
			ReadNs: 100 * 10e6, UpdateNs: 50 * 30e6,
			StageCounts: [6]int64{150, 0, 50, 50, 150, 150},
			StageNs:     [6]int64{150 * 1e6, 0, 50 * 2e5, 50 * 3e6, 150 * 4e5, 150 * 1e5}},
	}
	i := 0
	src := FuncSource(func() (Sample, error) {
		s := samples[i]
		if i < len(samples)-1 {
			i++
		}
		return s, nil
	})
	mon := NewMonitor(reg, workload.TPCWShopping(), 0.5, src)

	if _, ok := mon.Step(); ok {
		t.Fatal("first sample closed a window")
	}
	me, ok := mon.Step()
	if !ok {
		t.Fatal("second sample closed no window")
	}
	if me.Replicas != 2 || me.ObservedTPS != 150 {
		t.Fatalf("me = %+v", me)
	}
	if last, ok := mon.Last(); !ok || last != me {
		t.Fatalf("Last() = %+v, %v", last, ok)
	}

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, name := range []string{
		"replicadb_model_predicted_tps",
		"replicadb_model_observed_tps 150",
		"replicadb_model_tps_error",
		"replicadb_model_observed_latency_seconds",
		"replicadb_model_replicas 2",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q:\n%s", name, out)
		}
	}
}

func TestProfilerStageMeans(t *testing.T) {
	p := NewProfiler(workload.TPCWShopping(), 0.1)
	p.Observe(Sample{When: at(0), Cohort: "a"})
	l, ok := p.Observe(Sample{When: at(1), Cohort: "a",
		ReadCommits: 10, ReadNs: 10e7,
		Members:     3,
		StageCounts: [6]int64{10, 0, 0, 0, 10, 10},
		StageNs:     [6]int64{10 * 2e6, 0, 0, 0, 10 * 5e5, 10 * 1e5}})
	if !ok {
		t.Fatal("no window")
	}
	if l.Members != 3 {
		t.Fatalf("members = %d, want 3", l.Members)
	}
	if l.StageMeans[0] != 0.002 {
		t.Fatalf("certify mean = %v, want 2ms", l.StageMeans[0])
	}
	if l.StageMeans[1] != 0 {
		t.Fatalf("paxos mean = %v, want 0 (no observations)", l.StageMeans[1])
	}
	if l.StageMeans[4] != 0.0005 {
		t.Fatalf("apply mean = %v, want 0.5ms", l.StageMeans[4])
	}
}
