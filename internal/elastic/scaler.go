package elastic

import (
	"fmt"
	"sync"
)

// Replica is one elastically managed cluster member as the scaler
// sees it. *server.Server satisfies it: Addr reports the listen
// address, Leave drains and deregisters, Close tears the process
// state down.
type Replica interface {
	Addr() string
	Leave() error
	Close() error
}

// LocalScaler manages a pool of spawned replicas on top of a fixed
// baseline (the primary, plus any statically configured replicas the
// scaler must never remove). Spawn is called to add a replica; it is
// expected to run the full join protocol (Join, snapshot transfer,
// catch-up) before returning, so a successful ScaleUp means a
// serving replica.
type LocalScaler struct {
	spawn func() (Replica, error)

	mu       sync.Mutex
	baseline int
	reps     []Replica
	failures int
}

// NewLocalScaler creates a scaler over `baseline` unmanaged replicas
// and a spawn function for elastic ones.
func NewLocalScaler(baseline int, spawn func() (Replica, error)) *LocalScaler {
	if baseline < 1 {
		baseline = 1
	}
	return &LocalScaler{baseline: baseline, spawn: spawn}
}

// Replicas implements Scaler.
func (s *LocalScaler) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseline + len(s.reps)
}

// Failures counts spawn attempts that did not produce a serving
// replica — the "failed state transfers" the acceptance criteria
// require to be zero.
func (s *LocalScaler) Failures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// ScaleUp implements Scaler: spawn one replica through the join
// protocol.
func (s *LocalScaler) ScaleUp() error {
	r, err := s.spawn()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.failures++
		return err
	}
	s.reps = append(s.reps, r)
	return nil
}

// ScaleDown implements Scaler: drain and remove the newest spawned
// replica. The baseline is never touched.
func (s *LocalScaler) ScaleDown() error {
	s.mu.Lock()
	if len(s.reps) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("elastic: nothing to scale down (at baseline %d)", s.baseline)
	}
	r := s.reps[len(s.reps)-1]
	s.reps = s.reps[:len(s.reps)-1]
	s.mu.Unlock()
	err := r.Leave()
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close drains and closes every spawned replica (newest first).
func (s *LocalScaler) Close() {
	s.mu.Lock()
	reps := s.reps
	s.reps = nil
	s.mu.Unlock()
	for i := len(reps) - 1; i >= 0; i-- {
		_ = reps[i].Leave()
		_ = reps[i].Close()
	}
}
