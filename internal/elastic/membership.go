// Package elastic implements online cluster membership and
// prediction-driven autoscaling for the replicated database: replicas
// join and leave a running cluster (state transfer = consistent
// snapshot + writeset catch-up over the existing propagation
// protocol), a live profiler distills serving counters into the model
// inputs of §4, and a controller runs the multi-master MVA model of
// §3.3.2 over the live profile to decide how many replicas the
// workload needs — closing the paper's loop from offline capacity
// planning to an operational subsystem.
package elastic

import (
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// memberState is one cluster member as the primary tracks it.
type memberState struct {
	addr string
	// static members come from the boot configuration (-peers); they
	// are never evicted for inactivity, matching the pre-elastic
	// behavior where a dead configured replica conservatively blocks
	// log GC until an operator intervenes.
	static bool
	// lastSeen is the last time this member proved liveness: its join
	// admission or its most recent propagation long-poll.
	lastSeen time.Time
}

// Membership is the primary's authoritative member registry. Every
// change bumps the epoch, which clients and peers use to detect
// membership drift cheaply. It is safe for concurrent use.
type Membership struct {
	mu      sync.Mutex
	epoch   int64
	nextID  int64
	members map[int64]*memberState
}

// NewMembership returns an empty registry at epoch 0.
func NewMembership() *Membership {
	return &Membership{members: make(map[int64]*memberState)}
}

// SeedStatic installs the boot-time member list (addresses indexed by
// replica id, as given to -peers). Addresses may be empty when the
// operator did not share them; the ids still reserve their slots so
// joiners get fresh ids.
func (m *Membership) SeedStatic(addrs []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, addr := range addrs {
		id := int64(i)
		m.members[id] = &memberState{addr: addr, static: true, lastSeen: time.Now()}
		if id >= m.nextID {
			m.nextID = id + 1
		}
	}
	m.epoch++
}

// Join admits a new member and returns its assigned id, the epoch
// after admission, and the member list including the joiner.
func (m *Membership) Join(addr string, now time.Time) (id int64, epoch int64, members []wire.Member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id = m.nextID
	m.nextID++
	m.members[id] = &memberState{addr: addr, lastSeen: now}
	m.epoch++
	return id, m.epoch, m.listLocked()
}

// Leave removes a member; it reports whether the id was present.
func (m *Membership) Leave(id int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[id]; !ok {
		return false
	}
	delete(m.members, id)
	m.epoch++
	return true
}

// Touch records liveness proof from member id (a propagation poll).
func (m *Membership) Touch(id int64, now time.Time) {
	m.mu.Lock()
	if ms, ok := m.members[id]; ok {
		ms.lastSeen = now
	}
	m.mu.Unlock()
}

// Contains reports whether id is a current member.
func (m *Membership) Contains(id int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.members[id]
	return ok
}

// Snapshot returns the current epoch and member list, sorted by id.
func (m *Membership) Snapshot() (int64, []wire.Member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch, m.listLocked()
}

// Peers returns the number of members excluding the primary (id 0) —
// the count of propagation cursors the primary must see before it may
// prune the certification log.
func (m *Membership) Peers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id := range m.members {
		if id != 0 {
			n++
		}
	}
	return n
}

// EvictStale removes non-static members whose last liveness proof is
// older than grace — a joiner that crashed mid-state-transfer, or a
// replica that died without a Leave. Without eviction such a ghost
// would block certification-log GC forever (its expected cursor never
// arrives). It returns the evicted ids.
func (m *Membership) EvictStale(now time.Time, grace time.Duration) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var evicted []int64
	for id, ms := range m.members {
		if ms.static || now.Sub(ms.lastSeen) <= grace {
			continue
		}
		delete(m.members, id)
		evicted = append(evicted, id)
	}
	if len(evicted) > 0 {
		m.epoch++
		sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
	}
	return evicted
}

func (m *Membership) listLocked() []wire.Member {
	out := make([]wire.Member, 0, len(m.members))
	for id, ms := range m.members {
		out = append(out, wire.Member{ID: id, Addr: ms.addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
