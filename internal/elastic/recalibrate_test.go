package elastic

import (
	"errors"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestLiveDemandsDerivation(t *testing.T) {
	l := Load{
		MeanRead: 0.002,
		StageMeans: [6]float64{
			stageCertify: 0.0001,
			stagePaxos:   0.0002,
			stageJournal: 0.0003,
			stageFsync:   0.0010,
			stageApply:   0.0004,
			stageAck:     0.00005,
		},
	}
	d, ok := LiveDemands(l)
	if !ok {
		t.Fatal("usable window rejected")
	}
	if d.RC[workload.CPU] != 0.002 || d.RC[workload.Disk] != 0 {
		t.Fatalf("RC = %v", d.RC)
	}
	if d.WS[workload.CPU] != 0.0004 {
		t.Fatalf("WS cpu = %v", d.WS[workload.CPU])
	}
	if want := 0.0003 + 0.0010; !near(d.WS[workload.Disk], want) {
		t.Fatalf("WS disk = %v, want %v", d.WS[workload.Disk], want)
	}
	if want := 0.0001 + 0.0002 + 0.0004 + 0.00005; !near(d.WC[workload.CPU], want) {
		t.Fatalf("WC cpu = %v, want %v", d.WC[workload.CPU], want)
	}

	// An idle, untraced window has nothing to recalibrate from.
	if _, ok := LiveDemands(Load{}); ok {
		t.Fatal("empty window accepted")
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	tol := 1e-9 * (1 + b)
	if b < 0 {
		tol = 1e-9 * (1 - b)
	}
	return d < tol
}

func TestRecalibrateEWMAFold(t *testing.T) {
	base := workload.TPCWShopping()
	p := NewProfiler(base, 0.1)
	live := Demands{}
	live.RC[workload.CPU] = 2 * base.RC[workload.CPU]
	p.Recalibrate(live)
	got := p.Demands()
	want := (1-demandEWMA)*base.RC[workload.CPU] + demandEWMA*2*base.RC[workload.CPU]
	if !near(got.RC[workload.CPU], want) {
		t.Fatalf("RC cpu after fold = %v, want %v", got.RC[workload.CPU], want)
	}
	// Zero-valued live entries leave the calibrated demand untouched.
	if got.RC[workload.Disk] != base.RC[workload.Disk] {
		t.Fatalf("RC disk changed: %v vs %v", got.RC[workload.Disk], base.RC[workload.Disk])
	}
	if got.WC != base.WC || got.WS != base.WS {
		t.Fatal("unmeasured classes changed")
	}
	// Repeated folds converge toward the live measurement.
	for i := 0; i < 50; i++ {
		p.Recalibrate(live)
	}
	got = p.Demands()
	if !near(got.RC[workload.CPU], 2*base.RC[workload.CPU]) {
		t.Fatalf("EWMA did not converge: %v", got.RC[workload.CPU])
	}
	// Params must reflect the recalibrated demands.
	params := p.Params(Load{Throughput: 100, ReadRate: 100})
	if !near(params.Mix.RC[workload.CPU], 2*base.RC[workload.CPU]) {
		t.Fatalf("Params ignored recalibration: %v", params.Mix.RC[workload.CPU])
	}
}

// TestControllerRecalibratesAndReportsDecisions drives the controller
// with stage-bearing samples: the profile must drift toward the live
// demands and every attempted scaling step must surface through the
// decision hook with its MVA inputs.
func TestControllerRecalibratesAndReportsDecisions(t *testing.T) {
	cfg := testConfig()
	cfg.Recalibrate = true
	cfg.Cooldown = time.Nanosecond
	n := 1
	scaler := &funcScaler{n: &n}
	var sampleAt float64
	var commits int64
	src := FuncSource(func() (Sample, error) {
		sampleAt++
		commits += 200
		s := Sample{When: at(sampleAt), UpdateCommits: commits, UpdateNs: commits * 20e6}
		s.StageCounts = [6]int64{commits, 0, commits, commits, commits, commits}
		s.StageNs = [6]int64{commits * 1e5, 0, commits * 2e5, commits * 1e6, commits * 3e5, commits * 5e4}
		return s, nil
	})
	ctl, err := NewController(cfg, scaler, src)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []Decision
	ctl.OnDecision(func(d Decision) { decisions = append(decisions, d) })

	before := ctl.prof.Demands()
	for i := 0; i < 6; i++ {
		ctl.Step(at(float64(i)))
	}
	after := ctl.prof.Demands()
	if after.WS == before.WS {
		t.Fatal("recalibration left the writeset demand untouched")
	}
	// The EWMA must be pulling the writeset demand toward the live
	// stage-apply measurement (3e5 ns per writeset).
	liveWSCPU := 3e5 / 1e9
	distBefore := before.WS[workload.CPU] - liveWSCPU
	distAfter := after.WS[workload.CPU] - liveWSCPU
	if distBefore < 0 {
		distBefore, distAfter = -distBefore, -distAfter
	}
	if distAfter >= distBefore {
		t.Fatalf("WS cpu moved away from live demand: %v -> %v (live %v)",
			before.WS[workload.CPU], after.WS[workload.CPU], liveWSCPU)
	}
	if len(decisions) == 0 {
		t.Fatal("no decisions reported despite scaling")
	}
	d := decisions[0]
	if d.Direction != "up" || d.Target <= d.Current || d.Err != nil {
		t.Fatalf("decision = %+v", d)
	}
	if d.Clients <= 0 || d.Util <= 0 {
		t.Fatalf("decision missing model inputs: %+v", d)
	}
	st := ctl.Status()
	if st.Ups != len(decisions) {
		t.Fatalf("ups %d != decisions %d", st.Ups, len(decisions))
	}

	// A failing scaler surfaces through the hook's Err.
	n2 := 5
	failing := &failScaler{n: n2}
	ctl2, err := NewController(cfg, failing, src)
	if err != nil {
		t.Fatal(err)
	}
	var failed []Decision
	ctl2.OnDecision(func(d Decision) { failed = append(failed, d) })
	for i := 0; i < 6; i++ {
		ctl2.Step(at(float64(100 + i)))
	}
	found := false
	for _, d := range failed {
		if d.Err != nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failed decision reported: %+v", failed)
	}
}

type failScaler struct{ n int }

func (f *failScaler) Replicas() int    { return f.n }
func (f *failScaler) ScaleUp() error   { return errors.New("spawn failed") }
func (f *failScaler) ScaleDown() error { return errors.New("drain failed") }
