package elastic

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Scaler changes the cluster size one replica at a time. The
// networked implementation spawns a joiner server (join + snapshot +
// catch-up) or drains and deregisters the newest one; the in-process
// implementation calls mm.Cluster.AddReplica/RemoveReplica.
type Scaler interface {
	// Replicas is the current cluster size.
	Replicas() int
	// ScaleUp adds one replica.
	ScaleUp() error
	// ScaleDown drains and removes one replica (never the primary).
	ScaleDown() error
}

// Source supplies cumulative serving counters for the whole cluster.
type Source interface {
	Sample() (Sample, error)
}

// FuncSource adapts a function to Source.
type FuncSource func() (Sample, error)

// Sample implements Source.
func (f FuncSource) Sample() (Sample, error) { return f() }

// Config tunes the autoscaling controller.
type Config struct {
	// Min and Max bound the replica count (Min >= 1).
	Min, Max int
	// HighUtil and LowUtil delimit the target utilization band for
	// the busiest replica resource. The controller sizes the cluster
	// so predicted utilization stays at or below HighUtil, and only
	// shrinks when the smaller cluster would still sit at or below
	// LowUtil — the gap is the hysteresis that stops flapping when
	// load hovers near a threshold. Defaults: 0.75 / 0.45.
	HighUtil, LowUtil float64
	// Interval is the control period (default 1s): one sample, one
	// prediction, at most one scaling step.
	Interval time.Duration
	// Cooldown is the minimum time between scaling operations
	// (default 2·Interval), so a join's warm-up transient cannot
	// immediately trigger another decision.
	Cooldown time.Duration
	// Base is the standalone-calibrated workload profile supplying
	// the service demands (§4); the live profiler refreshes the rest.
	Base workload.Mix
	// Think is the live clients' think time; zero uses Base.Think.
	Think float64
	// Recalibrate folds each usable window's live stage-derived
	// service demands into the calibrated profile (EWMA), so the
	// predictor steers with demands the real servers exhibit.
	Recalibrate bool
}

func (c *Config) fill() error {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		return fmt.Errorf("elastic: max %d below min %d", c.Max, c.Min)
	}
	if c.HighUtil <= 0 {
		c.HighUtil = 0.75
	}
	if c.LowUtil <= 0 {
		c.LowUtil = 0.45
	}
	if c.LowUtil >= c.HighUtil {
		return fmt.Errorf("elastic: low-util %v must be below high-util %v", c.LowUtil, c.HighUtil)
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if err := c.Base.Validate(); err != nil {
		return fmt.Errorf("elastic: base mix: %w", err)
	}
	return nil
}

// Decision describes one attempted scaling action together with the
// MVA model inputs that motivated it, for the event journal and logs.
type Decision struct {
	Direction string  // "up" or "down"
	Target    int     // computed target replica count
	Current   int     // cluster size when the decision fired
	Clients   float64 // live closed-loop client estimate (Little's law)
	Util      float64 // predicted busiest-resource utilization at Current
	Err       error   // nil when the scaler accepted the step
}

// Status is a snapshot of the controller's latest decision state.
type Status struct {
	Ups, Downs int // scaling operations issued
	Errors     int // scaling operations that failed
	Target     int // latest computed target
	Replicas   int // cluster size at the latest tick
	Clients    float64
	Util       float64 // predicted busiest-resource utilization at current size
}

// Controller periodically samples the live cluster, runs the MVA
// model over the live profile, and steers the replica count into the
// target utilization band. Create with NewController, drive with Run.
type Controller struct {
	cfg    Config
	scaler Scaler
	src    Source
	prof   *Profiler

	mu        sync.Mutex
	lastScale time.Time
	status    Status
	onDecide  func(Decision)
}

// OnDecision registers a hook fired after every attempted scaling
// step (successful or not), outside the controller's lock. At most
// one hook; call before Run.
func (c *Controller) OnDecision(fn func(Decision)) { c.onDecide = fn }

// Recalibrate replaces the profiler's service demands with
// live-measured per-operation demands (seconds per transaction at the
// given resource), folding them in through the profiler's EWMA so one
// noisy measurement window cannot whipsaw the model. Zero-valued
// fields leave the corresponding demand untouched.
func (c *Controller) Recalibrate(d Demands) { c.prof.Recalibrate(d) }

// NewController validates the configuration and builds a controller.
func NewController(cfg Config, scaler Scaler, src Source) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if scaler == nil || src == nil {
		return nil, fmt.Errorf("elastic: controller needs a scaler and a source")
	}
	return &Controller{
		cfg:    cfg,
		scaler: scaler,
		src:    src,
		prof:   NewProfiler(cfg.Base, cfg.Think),
	}, nil
}

// Status returns the latest decision snapshot.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// Run executes control ticks until stop closes.
func (c *Controller) Run(stop <-chan struct{}) {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.Step(time.Now())
		}
	}
}

// Step runs one control tick: sample, profile, predict, and move at
// most one replica toward the target. Exposed so tests and the DES
// harness can drive the controller without real time.
func (c *Controller) Step(now time.Time) {
	s, err := c.src.Sample()
	if err != nil {
		return
	}
	load, ok := c.prof.Observe(s)
	if !ok {
		return
	}
	if c.cfg.Recalibrate {
		if d, ok := LiveDemands(load); ok {
			c.prof.Recalibrate(d)
		}
	}
	params := c.prof.Params(load)
	cur := c.scaler.Replicas()
	target := Decide(c.cfg, params, load.Clients, cur)

	c.mu.Lock()
	c.status.Target = target
	c.status.Replicas = cur
	c.status.Clients = load.Clients
	c.status.Util = utilAt(c.cfg, params, load.Clients, cur)
	cooling := now.Sub(c.lastScale) < c.cfg.Cooldown
	if target == cur || cooling {
		c.mu.Unlock()
		return
	}
	c.lastScale = now
	c.mu.Unlock()

	dir := "up"
	if target > cur {
		err = c.scaler.ScaleUp()
	} else {
		dir = "down"
		err = c.scaler.ScaleDown()
	}
	c.mu.Lock()
	if err != nil {
		c.status.Errors++
	} else if target > cur {
		c.status.Ups++
	} else {
		c.status.Downs++
	}
	util := c.status.Util
	c.mu.Unlock()
	if c.onDecide != nil {
		c.onDecide(Decision{
			Direction: dir,
			Target:    target,
			Current:   cur,
			Clients:   load.Clients,
			Util:      util,
			Err:       err,
		})
	}
}

// maxModelClients bounds the per-replica client population fed to the
// exact MVA recursion (cost is linear in it); a wild Little's-law
// estimate during a latency spike must not stall the control loop.
const maxModelClients = 4096

// utilAt predicts the busiest-resource utilization of an n-replica
// cluster serving `clients` closed-loop clients, by splitting the
// population evenly across replicas (the load balancer's behavior)
// and solving the per-replica MVA model of §3.3.2.
func utilAt(cfg Config, params core.Params, clients float64, n int) float64 {
	if n < 1 || clients <= 0 {
		return 0
	}
	per := int(math.Ceil(clients / float64(n)))
	if per < 1 {
		per = 1
	}
	if per > maxModelClients {
		per = maxModelClients
	}
	params.Mix.Clients = per
	pred := core.PredictMM(params, n)
	u := pred.Replica.UtilCPU
	if pred.Replica.UtilDisk > u {
		u = pred.Replica.UtilDisk
	}
	return u
}

// Decide computes the target replica count for a live profile: the
// smallest n in [Min, Max] whose predicted busiest-resource
// utilization is at or below HighUtil (Max if none qualifies), with
// downscale hysteresis — a smaller cluster is adopted only if it
// would sit at or below LowUtil, so load hovering around HighUtil
// does not flap the membership. An idle window (no observed clients)
// drifts one step toward Min. Decide is pure: same inputs, same
// answer.
func Decide(cfg Config, params core.Params, clients float64, current int) int {
	if current < cfg.Min {
		return cfg.Min
	}
	if clients <= 0 {
		if current > cfg.Min {
			return current - 1
		}
		return current
	}
	target := cfg.Max
	for n := cfg.Min; n <= cfg.Max; n++ {
		if utilAt(cfg, params, clients, n) <= cfg.HighUtil {
			target = n
			break
		}
	}
	if target < current {
		for target < current && utilAt(cfg, params, clients, target) > cfg.LowUtil {
			target++
		}
	}
	if target > cfg.Max {
		target = cfg.Max
	}
	return target
}
