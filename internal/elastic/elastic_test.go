package elastic

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

func at(sec float64) time.Time {
	return time.Unix(0, 0).Add(time.Duration(sec * float64(time.Second)))
}

func TestMembershipJoinLeave(t *testing.T) {
	m := NewMembership()
	m.SeedStatic([]string{"a:1", "b:2"})
	if m.Peers() != 1 {
		t.Fatalf("peers = %d, want 1", m.Peers())
	}
	epoch0, members := m.Snapshot()
	if len(members) != 2 || members[0].ID != 0 || members[1].Addr != "b:2" {
		t.Fatalf("members = %+v", members)
	}
	id, epoch, members := m.Join("c:3", at(0))
	if id != 2 {
		t.Fatalf("joiner id = %d, want 2", id)
	}
	if epoch <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epoch)
	}
	if len(members) != 3 || members[2].Addr != "c:3" {
		t.Fatalf("members after join = %+v", members)
	}
	if m.Peers() != 2 {
		t.Fatalf("peers = %d, want 2", m.Peers())
	}
	if !m.Leave(id) || m.Contains(id) {
		t.Fatal("leave did not remove the member")
	}
	if m.Leave(id) {
		t.Fatal("double leave reported success")
	}
	// A later joiner never reuses a departed id.
	id2, _, _ := m.Join("d:4", at(1))
	if id2 <= id {
		t.Fatalf("id %d reused after leave", id2)
	}
}

func TestMembershipEvictsStaleJoinersOnly(t *testing.T) {
	m := NewMembership()
	m.SeedStatic([]string{"a:1"})
	id, _, _ := m.Join("b:2", at(0))
	live, _, _ := m.Join("c:3", at(0))

	// The live joiner keeps proving liveness; the other goes silent.
	m.Touch(live, at(10))
	evicted := m.EvictStale(at(10), 5*time.Second)
	if len(evicted) != 1 || evicted[0] != id {
		t.Fatalf("evicted = %v, want [%d]", evicted, id)
	}
	if !m.Contains(live) || !m.Contains(0) {
		t.Fatal("eviction removed a live or static member")
	}
	// Static members are never evicted, no matter how silent.
	if ev := m.EvictStale(at(1000), time.Second); len(ev) != 1 || ev[0] != live {
		t.Fatalf("second eviction = %v", ev)
	}
	if !m.Contains(0) {
		t.Fatal("static member evicted")
	}
}

func TestProfilerObserveWindows(t *testing.T) {
	p := NewProfiler(workload.TPCWShopping(), 0.1)
	if _, ok := p.Observe(Sample{When: at(0)}); ok {
		t.Fatal("first sample produced a window")
	}
	s := Sample{
		When:        at(2),
		ReadCommits: 160, UpdateCommits: 40, Aborts: 10,
		ReadNs: 160 * 20e6, UpdateNs: 40 * 50e6, // 20ms reads, 50ms updates
	}
	l, ok := p.Observe(s)
	if !ok {
		t.Fatal("second sample produced no window")
	}
	if l.ReadRate != 80 || l.UpdateRate != 20 {
		t.Fatalf("rates = %v / %v", l.ReadRate, l.UpdateRate)
	}
	if l.MeanRead != 0.020 || l.MeanUpdate != 0.050 {
		t.Fatalf("means = %v / %v", l.MeanRead, l.MeanUpdate)
	}
	if l.AbortRate != 0.2 {
		t.Fatalf("abort rate = %v", l.AbortRate)
	}
	// N = X·(R+Z) with R = (0.020·80+0.050·20)/100 = 0.026, Z = 0.1.
	if want := 100 * (0.026 + 0.1); l.Clients < want-1e-9 || l.Clients > want+1e-9 {
		t.Fatalf("clients = %v, want %v", l.Clients, want)
	}

	// A regressing counter (membership churn) discards the window and
	// resets the baseline.
	if _, ok := p.Observe(Sample{When: at(3), ReadCommits: 100}); ok {
		t.Fatal("regressed window not discarded")
	}
	if _, ok := p.Observe(Sample{When: at(4), ReadCommits: 150, ReadNs: 50 * 10e6}); !ok {
		t.Fatal("window after reset not produced")
	}

	// A cohort change (member set differs, e.g. one Stats poll was
	// dropped) discards the window even though counters grew — the
	// next same-cohort sample would otherwise credit a member's whole
	// history to one window.
	if _, ok := p.Observe(Sample{When: at(5), ReadCommits: 400, Cohort: "a,b"}); ok {
		t.Fatal("cohort-changed window not discarded")
	}
	if _, ok := p.Observe(Sample{When: at(6), ReadCommits: 450, Cohort: "a,b"}); !ok {
		t.Fatal("same-cohort window after reset not produced")
	}

	params := p.Params(Load{Throughput: 100, ReadRate: 80, UpdateRate: 20,
		MeanUpdate: 0.050, AbortRate: 0.01})
	if d := params.Mix.Pr - 0.8; d > 1e-9 || d < -1e-9 {
		t.Fatalf("live mix fractions = %v/%v", params.Mix.Pr, params.Mix.Pw)
	}
	if d := params.Mix.Pw - 0.2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("live mix fractions = %v/%v", params.Mix.Pr, params.Mix.Pw)
	}
	if params.Mix.A1 != 0.01 || params.L1 != 0.050 {
		t.Fatalf("A1 = %v L1 = %v", params.Mix.A1, params.L1)
	}
}

// testConfig returns a controller config over the TPC-W shopping
// demands with a 100ms think time.
func testConfig() Config {
	return Config{
		Min: 1, Max: 5,
		HighUtil: 0.75, LowUtil: 0.45,
		Base:  workload.TPCWShopping(),
		Think: 0.1,
	}
}

func TestDecideScalesWithOfferedLoad(t *testing.T) {
	cfg := testConfig()
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	prof := NewProfiler(cfg.Base, cfg.Think)
	params := prof.Params(Load{Throughput: 100, ReadRate: 80, UpdateRate: 20, MeanUpdate: 0.02})

	targets := make([]int, 0, 4)
	for _, clients := range []float64{1, 8, 20, 60} {
		targets = append(targets, Decide(cfg, params, clients, cfg.Min))
	}
	for i := 1; i < len(targets); i++ {
		if targets[i] < targets[i-1] {
			t.Fatalf("target shrank as load grew: %v", targets)
		}
	}
	if targets[0] != 1 {
		t.Fatalf("one client should need one replica, got %d", targets[0])
	}
	if targets[len(targets)-1] < 3 {
		t.Fatalf("60 clients over ~36ms demands should need >= 3 replicas, got %v", targets)
	}
	// Saturating load pins the target at Max, never beyond.
	if got := Decide(cfg, params, 1e6, 1); got != cfg.Max {
		t.Fatalf("saturating target = %d, want max %d", got, cfg.Max)
	}
}

func TestDecideHysteresisAndIdle(t *testing.T) {
	cfg := testConfig()
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	prof := NewProfiler(cfg.Base, cfg.Think)
	params := prof.Params(Load{Throughput: 100, ReadRate: 80, UpdateRate: 20, MeanUpdate: 0.02})

	// Find a population whose fresh target is n, then verify a cluster
	// already at n+1 holds steady unless utilization drops to LowUtil:
	// the flap guard means up- and down-thresholds differ.
	var clients float64
	var fresh int
	for c := 4.0; c < 200; c += 1 {
		n := Decide(cfg, params, c, cfg.Min)
		if n > 1 && n < cfg.Max {
			u := utilAt(cfg, params, c, n)
			if u > cfg.LowUtil && u <= cfg.HighUtil {
				clients, fresh = c, n
				break
			}
		}
	}
	if clients == 0 {
		t.Fatal("no hysteresis operating point found")
	}
	if got := Decide(cfg, params, clients, fresh+1); got != fresh+1 {
		t.Fatalf("cluster at %d shrank to %d although util at %d exceeds LowUtil", fresh+1, got, fresh)
	}
	// Idle windows drift one step toward Min per decision.
	if got := Decide(cfg, params, 0, 4); got != 3 {
		t.Fatalf("idle decision = %d, want 3", got)
	}
	if got := Decide(cfg, params, 0, cfg.Min); got != cfg.Min {
		t.Fatalf("idle at min = %d", got)
	}
}

// fakeReplica counts lifecycle calls.
type fakeReplica struct{ left, closed bool }

func (f *fakeReplica) Addr() string { return "fake" }
func (f *fakeReplica) Leave() error { f.left = true; return nil }
func (f *fakeReplica) Close() error { f.closed = true; return nil }

func TestLocalScaler(t *testing.T) {
	var spawned []*fakeReplica
	fail := false
	s := NewLocalScaler(1, func() (Replica, error) {
		if fail {
			return nil, errors.New("boom")
		}
		r := &fakeReplica{}
		spawned = append(spawned, r)
		return r, nil
	})
	if s.Replicas() != 1 {
		t.Fatalf("baseline = %d", s.Replicas())
	}
	if err := s.ScaleUp(); err != nil || s.Replicas() != 2 {
		t.Fatalf("scale up: %v, n=%d", err, s.Replicas())
	}
	fail = true
	if err := s.ScaleUp(); err == nil {
		t.Fatal("failed spawn not reported")
	}
	if s.Failures() != 1 || s.Replicas() != 2 {
		t.Fatalf("failures = %d n = %d", s.Failures(), s.Replicas())
	}
	if err := s.ScaleDown(); err != nil || s.Replicas() != 1 {
		t.Fatalf("scale down: %v, n=%d", err, s.Replicas())
	}
	if !spawned[0].left || !spawned[0].closed {
		t.Fatal("scale down did not drain and close the replica")
	}
	if err := s.ScaleDown(); err == nil {
		t.Fatal("scaling below baseline allowed")
	}
}

func TestControllerStepsOncePerCooldown(t *testing.T) {
	cfg := testConfig()
	cfg.Interval = 10 * time.Millisecond
	cfg.Cooldown = time.Hour // one op, then frozen
	n := 1
	scaler := &funcScaler{n: &n}
	var sampleAt float64
	var commits int64
	src := FuncSource(func() (Sample, error) {
		sampleAt += 1
		commits += 200 // heavy update traffic: 200 commits/sec
		return Sample{When: at(sampleAt), UpdateCommits: commits, UpdateNs: commits * 20e6}, nil
	})
	ctl, err := NewController(cfg, scaler, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ctl.Step(at(float64(i)))
	}
	if n != 2 {
		t.Fatalf("cooldown violated: replicas = %d after 5 ticks", n)
	}
	st := ctl.Status()
	if st.Ups != 1 || st.Target < 2 {
		t.Fatalf("status = %+v", st)
	}
}

type funcScaler struct{ n *int }

func (f *funcScaler) Replicas() int { return *f.n }
func (f *funcScaler) ScaleUp() error {
	*f.n++
	return nil
}
func (f *funcScaler) ScaleDown() error {
	if *f.n <= 1 {
		return fmt.Errorf("at baseline")
	}
	*f.n--
	return nil
}
