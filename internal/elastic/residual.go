package elastic

import (
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ModelError compares one live Load window against the MVA model's
// prediction for the same offered population and replica count — the
// live analogue of the paper's validation experiments (§5): how far
// off would the model have been if asked to predict the window we
// just measured?
type ModelError struct {
	Replicas int     `json:"replicas"`
	Clients  float64 `json:"clients"`

	PredictedTPS float64 `json:"predicted_tps"`
	ObservedTPS  float64 `json:"observed_tps"`
	// TPSError is the signed relative throughput residual
	// (predicted-observed)/observed; positive means the model is
	// optimistic.
	TPSError float64 `json:"tps_error"`

	PredictedLatency float64 `json:"predicted_latency_seconds"`
	ObservedLatency  float64 `json:"observed_latency_seconds"`
	LatencyError     float64 `json:"latency_error"`

	PredictedAbort float64 `json:"predicted_abort_rate"`
	ObservedAbort  float64 `json:"observed_abort_rate"`
}

// EvalModel evaluates the MVA model against one observed Load window
// on a cluster of `replicas` nodes, using the profiler's calibrated
// base demands refreshed with the window's live mix — exactly the
// parameters the autoscaler's Decide would use, so the residual
// reported here is the error of the model actually steering the
// cluster. ok=false when the window carries nothing to compare (no
// throughput, or no replica count).
func EvalModel(p *Profiler, l Load, replicas int) (ModelError, bool) {
	if replicas < 1 || l.Throughput <= 0 || l.Clients <= 0 {
		return ModelError{}, false
	}
	params := p.Params(l)
	per := int(math.Ceil(l.Clients / float64(replicas)))
	if per < 1 {
		per = 1
	}
	if per > maxModelClients {
		per = maxModelClients
	}
	params.Mix.Clients = per
	pred := core.PredictMM(params, replicas)

	me := ModelError{
		Replicas:         replicas,
		Clients:          l.Clients,
		PredictedTPS:     pred.Throughput,
		ObservedTPS:      l.Throughput,
		PredictedLatency: pred.ResponseTime,
		PredictedAbort:   pred.AbortRate,
		ObservedAbort:    l.AbortRate,
	}
	me.ObservedLatency = (l.MeanRead*l.ReadRate + l.MeanUpdate*l.UpdateRate) / l.Throughput
	me.TPSError = (me.PredictedTPS - me.ObservedTPS) / me.ObservedTPS
	if me.ObservedLatency > 0 {
		me.LatencyError = (me.PredictedLatency - me.ObservedLatency) / me.ObservedLatency
	}
	return me, true
}

// Monitor continuously evaluates the MVA model against the live
// cluster and exports the prediction and its residual as gauges —
// `replicadb_model_*` on /metrics. It runs its own profiler over its
// own source so it can watch a cluster whether or not the autoscaler
// is engaged.
type Monitor struct {
	prof *Profiler
	src  Source

	predTPS, obsTPS, errTPS       *obs.Gauge
	predLat, obsLat, errLat       *obs.Gauge
	predAbort, obsAbort, replicas *obs.Gauge

	recal bool

	mu   sync.Mutex
	last ModelError
	ok   bool
}

// SetRecalibrate enables live demand recalibration: every usable
// window's stage-derived demands are folded into the profiler before
// the model is evaluated, so the exported residual measures the model
// the autoscaler would actually steer with — live-profiled demands,
// not the standalone calibration alone. Call before Run.
func (m *Monitor) SetRecalibrate(on bool) { m.recal = on }

// Profiler exposes the monitor's profiler, so callers can share its
// live-recalibrated demands (e.g. `replicadb status` renders them).
func (m *Monitor) Profiler() *Profiler { return m.prof }

// NewMonitor builds a monitor over a calibrated base mix and a stats
// source, registering its gauges on reg. think overrides the base
// mix's think time when positive.
func NewMonitor(reg *obs.Registry, base workload.Mix, think float64, src Source) *Monitor {
	return newMonitor(reg, base, think, src, nil)
}

// NewShardMonitor is NewMonitor for one replica group of a
// hash-partitioned deployment: every gauge carries a `shard` label, so
// one registry (one /metrics endpoint, one scrape) exports each
// group's residual side by side. Each group's load profile is its own
// — the hash partitions the keyspace, not the offered mix, so the MVA
// model applies per group exactly as it does to a standalone cluster.
func NewShardMonitor(reg *obs.Registry, base workload.Mix, think float64, src Source, shard string) *Monitor {
	return newMonitor(reg, base, think, src, []obs.Label{obs.L("shard", shard)})
}

func newMonitor(reg *obs.Registry, base workload.Mix, think float64, src Source, labels []obs.Label) *Monitor {
	m := &Monitor{prof: NewProfiler(base, think), src: src}
	m.predTPS = reg.Gauge("replicadb_model_predicted_tps",
		"MVA-predicted system throughput for the last observed window.", labels...)
	m.obsTPS = reg.Gauge("replicadb_model_observed_tps",
		"Observed system throughput over the last window.", labels...)
	m.errTPS = reg.Gauge("replicadb_model_tps_error",
		"Signed relative throughput residual (predicted-observed)/observed.", labels...)
	m.predLat = reg.Gauge("replicadb_model_predicted_latency_seconds",
		"MVA-predicted mean transaction response time.", labels...)
	m.obsLat = reg.Gauge("replicadb_model_observed_latency_seconds",
		"Observed mean transaction response time over the last window.", labels...)
	m.errLat = reg.Gauge("replicadb_model_latency_error",
		"Signed relative latency residual (predicted-observed)/observed.", labels...)
	m.predAbort = reg.Gauge("replicadb_model_predicted_abort_rate",
		"MVA-predicted abort probability.", labels...)
	m.obsAbort = reg.Gauge("replicadb_model_observed_abort_rate",
		"Observed abort fraction over the last window.", labels...)
	m.replicas = reg.Gauge("replicadb_model_replicas",
		"Replica count the model was evaluated at.", labels...)
	return m
}

// Step takes one sample and, when it closes a usable window, refreshes
// the exported residual. It returns the evaluation for callers that
// want it (the bench watcher records the final one).
func (m *Monitor) Step() (ModelError, bool) {
	s, err := m.src.Sample()
	if err != nil {
		return ModelError{}, false
	}
	load, ok := m.prof.Observe(s)
	if !ok {
		return ModelError{}, false
	}
	if m.recal {
		if d, ok := LiveDemands(load); ok {
			m.prof.Recalibrate(d)
		}
	}
	me, ok := EvalModel(m.prof, load, load.Members)
	if !ok {
		return ModelError{}, false
	}
	m.predTPS.Set(me.PredictedTPS)
	m.obsTPS.Set(me.ObservedTPS)
	m.errTPS.Set(me.TPSError)
	m.predLat.Set(me.PredictedLatency)
	m.obsLat.Set(me.ObservedLatency)
	m.errLat.Set(me.LatencyError)
	m.predAbort.Set(me.PredictedAbort)
	m.obsAbort.Set(me.ObservedAbort)
	m.replicas.Set(float64(me.Replicas))
	m.mu.Lock()
	m.last, m.ok = me, true
	m.mu.Unlock()
	return me, true
}

// Last returns the most recent evaluation, if any window completed.
func (m *Monitor) Last() (ModelError, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last, m.ok
}

// Run evaluates the model every interval until stop closes.
func (m *Monitor) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Step()
		}
	}
}
