package elastic

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
)

// WireSource samples a networked cluster: it asks the primary for the
// current membership, polls every member's Stats counters over pooled
// links, and sums them. Links to departed members are closed lazily.
// A member that fails to answer is skipped — its counters simply
// don't move this window, and the profiler's monotonicity check
// discards the window if the sum regressed.
type WireSource struct {
	primaryAddr string
	design      string
	dialTimeout time.Duration

	mu    sync.Mutex
	links map[string]*client.Link
}

// NewWireSource creates a source polling the cluster behind the
// primary at addr.
func NewWireSource(primaryAddr, design string, dialTimeout time.Duration) *WireSource {
	return &WireSource{
		primaryAddr: primaryAddr,
		design:      design,
		dialTimeout: dialTimeout,
		links:       make(map[string]*client.Link),
	}
}

func (s *WireSource) linkFor(addr string) *client.Link {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.links[addr]
	if !ok {
		l = client.NewLink(addr, "", -1, s.dialTimeout)
		s.links[addr] = l
	}
	return l
}

// Sample implements Source.
func (s *WireSource) Sample() (Sample, error) {
	_, members, err := s.linkFor(s.primaryAddr).Members()
	if err != nil {
		return Sample{}, fmt.Errorf("elastic: membership poll: %w", err)
	}
	// The primary is polled by its known address; boot-time member
	// records may not carry addresses (pre-elastic configuration).
	addrs := []string{s.primaryAddr}
	for _, m := range members {
		if m.ID != 0 && m.Addr != "" && m.Addr != s.primaryAddr {
			addrs = append(addrs, m.Addr)
		}
	}
	live := make(map[string]bool, len(addrs))
	out := Sample{When: time.Now()}
	polled := make([]string, 0, len(addrs))
	for _, addr := range addrs {
		live[addr] = true
		st, err := s.linkFor(addr).Stats()
		if err != nil {
			continue // excluded from the cohort: the window is discarded
		}
		polled = append(polled, addr)
		out.ReadCommits += st.ReadCommits
		out.UpdateCommits += st.UpdateCommits
		out.Aborts += st.Aborts
		out.ReadNs += st.ReadNs
		out.UpdateNs += st.UpdateNs
		for i := range out.StageCounts {
			out.StageCounts[i] += st.StageCounts[i]
			out.StageNs[i] += st.StageNs[i]
		}
		out.Members++
	}
	sort.Strings(polled)
	out.Cohort = strings.Join(polled, ",")
	// Drop links to members that are gone.
	s.mu.Lock()
	for addr, l := range s.links {
		if !live[addr] {
			l.Close()
			delete(s.links, addr)
		}
	}
	s.mu.Unlock()
	return out, nil
}

// Close releases every pooled link.
func (s *WireSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for addr, l := range s.links {
		l.Close()
		delete(s.links, addr)
	}
}
