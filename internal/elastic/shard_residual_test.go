package elastic

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestShardMonitorsShareRegistry: two per-group monitors export their
// residuals side by side on ONE registry, distinguished by the shard
// label — the sharded deployment's single /metrics endpoint.
func TestShardMonitorsShareRegistry(t *testing.T) {
	reg := obs.NewRegistry()

	// Two synthetic groups with different observed throughput so the
	// label series are tellable apart in the exposition.
	mkSrc := func(tps int64) Source {
		samples := []Sample{
			{When: at(1), Cohort: "a,b", Members: 2},
			{When: at(2), Cohort: "a,b", Members: 2,
				ReadCommits: tps * 2 / 3, UpdateCommits: tps / 3,
				ReadNs: tps * 2 / 3 * 10e6, UpdateNs: tps / 3 * 30e6,
				StageCounts: [6]int64{tps, 0, tps / 3, tps / 3, tps, tps},
				StageNs:     [6]int64{tps * 1e6, 0, tps / 3 * 2e5, tps / 3 * 3e6, tps * 4e5, tps * 1e5}},
		}
		i := 0
		return FuncSource(func() (Sample, error) {
			s := samples[i]
			if i < len(samples)-1 {
				i++
			}
			return s, nil
		})
	}

	m0 := NewShardMonitor(reg, workload.TPCWShopping(), 0.5, mkSrc(150), "0")
	m1 := NewShardMonitor(reg, workload.TPCWShopping(), 0.5, mkSrc(300), "1")
	for _, m := range []*Monitor{m0, m1} {
		if _, ok := m.Step(); ok {
			t.Fatal("first sample closed a window")
		}
		if _, ok := m.Step(); !ok {
			t.Fatal("second sample closed no window")
		}
	}

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, line := range []string{
		`replicadb_model_observed_tps{shard="0"} 150`,
		`replicadb_model_observed_tps{shard="1"} 300`,
		`replicadb_model_replicas{shard="0"} 2`,
		`replicadb_model_replicas{shard="1"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// One family header, not two.
	if n := strings.Count(out, "# TYPE replicadb_model_observed_tps gauge"); n != 1 {
		t.Errorf("observed_tps TYPE lines = %d, want 1", n)
	}
}

// TestShardMonitorLabelIsolation: an unsharded monitor and a sharded
// one can coexist only on separate registries; on one registry the
// label sets keep per-shard monitors distinct (duplicate labels would
// panic at registration).
func TestShardMonitorLabelIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	NewShardMonitor(reg, workload.TPCWShopping(), 0.5, FuncSource(func() (Sample, error) {
		return Sample{}, nil
	}), "0")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate shard label registered without panic")
		}
	}()
	NewShardMonitor(reg, workload.TPCWShopping(), 0.5, FuncSource(func() (Sample, error) {
		return Sample{}, nil
	}), "0")
}
