package certifier

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressCertifyCheckGC drives concurrent Certify, Check, Since
// and GC traffic against the indexed certifier. Run under -race it
// validates the new index's synchronization; the invariant checks
// validate that pruning never loses conflict history that a live
// snapshot could still need.
func TestStressCertifyCheckGC(t *testing.T) {
	c := New()
	const (
		writers   = 8
		checkers  = 4
		perWorker = 400
		keySpace  = 64
	)
	var writerWg, bgWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		w := w
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64((w + i*writers) % keySpace)
				for {
					snap := c.Version()
					out, err := c.Certify(snap, ws(key))
					if err != nil {
						// The GC goroutine may have advanced the horizon
						// past our stale snapshot; retry with a fresh one.
						continue
					}
					if out.Committed {
						break
					}
					if out.ConflictWith <= snap {
						t.Errorf("abort blamed version %d <= snapshot %d", out.ConflictWith, snap)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < checkers; r++ {
		r := r
		bgWg.Add(1)
		go func() {
			defer bgWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Version()
				conflict, with := c.Check(snap, ws(int64((r+i)%keySpace)))
				if conflict && with <= snap {
					t.Errorf("Check blamed version %d <= snapshot %d", with, snap)
					return
				}
				if recs := c.Since(snap); len(recs) > 0 && recs[0].Version <= snap {
					t.Errorf("Since(%d) returned version %d", snap, recs[0].Version)
					return
				}
			}
		}()
	}
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := c.Version() - 32; v > 0 {
				c.GC(v)
			}
		}
	}()

	writerWg.Wait()
	close(stop)
	bgWg.Wait()

	if got := c.Version(); got != writers*perWorker {
		t.Fatalf("versions not dense under stress: %d != %d", got, writers*perWorker)
	}
	commits, _ := c.Stats()
	if commits != writers*perWorker {
		t.Fatalf("commit count %d != %d", commits, writers*perWorker)
	}
	if c.IndexSize() > keySpace {
		t.Fatalf("index grew past the key space: %d > %d", c.IndexSize(), keySpace)
	}
}

// TestStressBatcher runs the group-commit front end under heavy
// concurrent conflicting load and cross-checks totals.
func TestStressBatcher(t *testing.T) {
	c := New()
	b := NewBatcher(c, 16)
	const workers = 12
	const perWorker = 200
	var wg sync.WaitGroup
	var commits, aborts atomic.Int64
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64((w*perWorker + i) % 32)
				out, err := b.Certify(c.Version(), ws(key))
				if err != nil {
					t.Error(err)
					return
				}
				if out.Committed {
					commits.Add(1)
				} else {
					aborts.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	gotCommits, gotAborts := c.Stats()
	if gotCommits != commits.Load() || gotAborts != aborts.Load() {
		t.Fatalf("certifier stats %d/%d, clients observed %d/%d",
			gotCommits, gotAborts, commits.Load(), aborts.Load())
	}
	if c.Version() != commits.Load() {
		t.Fatalf("version %d != commits %d", c.Version(), commits.Load())
	}
}
