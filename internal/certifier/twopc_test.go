package certifier

import (
	"strings"
	"testing"

	"repro/internal/paxos"
)

func prep(id string, snapshot int64, keys ...int64) PreparedTxn {
	return PreparedTxn{ID: id, Snapshot: snapshot, Writeset: ws(keys...)}
}

// TestPrepareDecideCommit walks the happy path: a prepared fragment
// locks its keys against ordinary certification, the commit decision
// assigns the next global version and lands in the record log like
// any commit, and Forget clears the bookkeeping.
func TestPrepareDecideCommit(t *testing.T) {
	c := New()
	if out, _ := c.Certify(0, ws(1)); !out.Committed {
		t.Fatal("seed certify failed")
	}
	vote, _, err := c.Prepare(prep("t1", c.Version(), 10))
	if err != nil || !vote {
		t.Fatalf("prepare: vote=%v err=%v", vote, err)
	}
	// The lock blocks overlapping certification even at a current
	// snapshot — the prepared fragment holds a binding yes-vote.
	if out, _ := c.Certify(c.Version(), ws(10)); out.Committed {
		t.Fatal("certify committed past a prepared lock")
	}
	// Disjoint traffic is unaffected.
	if out, _ := c.Certify(c.Version(), ws(11)); !out.Committed {
		t.Fatal("disjoint certify blocked by unrelated lock")
	}
	want := c.Version() + 1
	ver, err := c.Decide("t1", true)
	if err != nil || ver != want {
		t.Fatalf("decide: version=%d err=%v, want %d", ver, err, want)
	}
	// Idempotent: a duplicate decide echoes the recorded outcome.
	if v2, err := c.Decide("t1", true); err != nil || v2 != ver {
		t.Fatalf("duplicate decide: %d %v", v2, err)
	}
	// A contradictory duplicate is an error, never a silent flip.
	if _, err := c.Decide("t1", false); err == nil {
		t.Fatal("contradictory decide accepted")
	}
	recs := c.Since(ver - 1)
	if len(recs) != 1 || recs[0].Version != ver || recs[0].Writeset.Entries[0].Key.Row != 10 {
		t.Fatalf("decided record not in log: %+v", recs)
	}
	// The lock is released: the key certifies again at the new version.
	if out, _ := c.Certify(c.Version(), ws(10)); !out.Committed {
		t.Fatal("lock survived the decision")
	}
	if len(c.InDoubt()) != 0 {
		t.Fatalf("in doubt after decide: %+v", c.InDoubt())
	}
	if err := c.Forget("t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Decided("t1"); ok {
		t.Fatal("decision survived Forget")
	}
}

// TestPrepareConflicts pins the three no-vote cases: a stale snapshot
// against committed history, an overlap with another prepared
// fragment, and — for contrast — the idempotent duplicate that still
// votes yes.
func TestPrepareConflicts(t *testing.T) {
	c := New()
	c.Certify(0, ws(1))
	vote, with, err := c.Prepare(prep("stale", 0, 1))
	if err != nil || vote {
		t.Fatalf("stale prepare voted yes (err=%v)", err)
	}
	if with != 1 {
		t.Fatalf("conflict attributed to version %d, want 1", with)
	}
	if vote, _, _ := c.Prepare(prep("a", c.Version(), 5)); !vote {
		t.Fatal("clean prepare voted no")
	}
	if vote, _, _ := c.Prepare(prep("b", c.Version(), 5, 6)); vote {
		t.Fatal("overlapping prepare voted yes")
	}
	if vote, _, _ := c.Prepare(prep("a", c.Version(), 5)); !vote {
		t.Fatal("duplicate prepare flipped its vote")
	}
	// Abort releases the lock; the key is immediately certifiable.
	if ver, err := c.Decide("a", false); err != nil || ver != 0 {
		t.Fatalf("abort decide: %d %v", ver, err)
	}
	if out, _ := c.Certify(c.Version(), ws(5)); !out.Committed {
		t.Fatal("abort did not release the lock")
	}
	// Commit for a transaction never prepared here is an error.
	if _, err := c.Decide("ghost", true); err == nil {
		t.Fatal("commit decision for unknown txn accepted")
	}
}

// TestPresumedAbortResolve pins the recovery contract: a coordinator
// with no durable decision answers abort and WRITES THAT DOWN, so a
// delayed commit decision for the same transaction can never
// contradict the answer it already gave.
func TestPresumedAbortResolve(t *testing.T) {
	c := New()
	commit, err := c.Resolve("ghost")
	if err != nil || commit {
		t.Fatalf("resolve unknown: commit=%v err=%v", commit, err)
	}
	if d, ok := c.Decided("ghost"); !ok || d.Commit {
		t.Fatalf("presumed abort not recorded: %+v ok=%v", d, ok)
	}
	if _, err := c.Decide("ghost", true); err == nil {
		t.Fatal("commit accepted after presumed abort was answered")
	}
	// Resolve echoes a recorded commit too.
	c.Certify(0, ws(1))
	c.Prepare(prep("x", c.Version(), 2))
	c.Decide("x", true)
	if commit, err := c.Resolve("x"); err != nil || !commit {
		t.Fatalf("resolve decided commit: %v %v", commit, err)
	}
}

// TestPreparedLockBlocksBatch checks CertifyBatch honours prepared
// locks like the singleton path.
func TestPreparedLockBlocksBatch(t *testing.T) {
	c := New()
	c.Certify(0, ws(1))
	if vote, _, _ := c.Prepare(prep("p", c.Version(), 7)); !vote {
		t.Fatal("prepare voted no")
	}
	snap := c.Version()
	outs, err := c.CertifyBatch([]Request{
		{Snapshot: snap, Writeset: ws(7)},
		{Snapshot: snap, Writeset: ws(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Outcome.Committed {
		t.Fatal("batch certified past a prepared lock")
	}
	if !outs[1].Outcome.Committed {
		t.Fatal("disjoint batch entry blocked")
	}
}

// TestReplicatedPrepareSurvivesPromote pins failover inheritance: a
// prepare proposed through Paxos must reappear — lock and all — on a
// backup promoted after the leader dies, and a decision recorded
// before the failover must be answerable by the new leader.
func TestReplicatedPrepareSurvivesPromote(t *testing.T) {
	accs := []*paxos.Acceptor{paxos.NewAcceptor(0), paxos.NewAcceptor(1), paxos.NewAcceptor(2)}
	tr := paxos.NewLocalTransport(accs...)
	a := NewReplicatedOver(0, []int{0, 1, 2}, tr, true)
	if out, err := a.Certify(0, ws(1)); err != nil || !out.Committed {
		t.Fatalf("seed: %+v %v", out, err)
	}
	// One decided-abort txn and one still in doubt at failover time.
	if vote, _, err := a.Prepare(prep("dead", a.Version(), 40)); err != nil || !vote {
		t.Fatalf("prepare dead: %v %v", vote, err)
	}
	if _, err := a.Decide("dead", false); err != nil {
		t.Fatal(err)
	}
	if vote, _, err := a.Prepare(prep("doubt", a.Version(), 50)); err != nil || !vote {
		t.Fatalf("prepare doubt: %v %v", vote, err)
	}

	tr.SetDown(0, true)
	b, _, err := Promote(1, []int{0, 1, 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.InDoubt()); got != 1 || b.InDoubt()[0].ID != "doubt" {
		t.Fatalf("promoted in-doubt set: %+v", b.InDoubt())
	}
	if out, _ := b.Certify(b.Version(), ws(50)); out.Committed {
		t.Fatal("promoted leader certified past an inherited lock")
	}
	if commit, err := b.Resolve("dead"); err != nil || commit {
		t.Fatalf("promoted leader lost the abort decision: %v %v", commit, err)
	}
	want := b.Version() + 1
	ver, err := b.Decide("doubt", true)
	if err != nil || ver != want {
		t.Fatalf("promoted decide: %d %v want %d", ver, err, want)
	}
	recs := b.Since(ver - 1)
	if len(recs) != 1 || recs[0].Writeset.Entries[0].Key.Row != 50 {
		t.Fatalf("decided record missing after failover: %+v", recs)
	}
}

// recordingTxnJournal captures 2PC journal traffic for assertion.
type recordingTxnJournal struct {
	seq      int64
	synced   int64
	syncErr  error
	prepares []PreparedTxn
	decides  []string
	forgets  []string
	appends  [][]Record
}

func (r *recordingTxnJournal) Append(recs []Record) (int64, error) {
	r.appends = append(r.appends, recs)
	r.seq++
	return r.seq, nil
}
func (r *recordingTxnJournal) Sync(seq int64) error {
	if r.syncErr != nil {
		return r.syncErr
	}
	if seq > r.synced {
		r.synced = seq
	}
	return nil
}
func (r *recordingTxnJournal) AppendPrepare(p PreparedTxn) (int64, error) {
	r.prepares = append(r.prepares, p)
	r.seq++
	return r.seq, nil
}
func (r *recordingTxnJournal) AppendDecision(txn string, commit bool, version int64, recs []Record) (int64, error) {
	r.decides = append(r.decides, txn)
	if commit {
		r.appends = append(r.appends, recs)
	}
	r.seq++
	return r.seq, nil
}
func (r *recordingTxnJournal) AppendForget(txn string) (int64, error) {
	r.forgets = append(r.forgets, txn)
	r.seq++
	return r.seq, nil
}

// TestTwoPCJournaling asserts every 2PC transition is journaled and
// synced before it is acknowledged.
func TestTwoPCJournaling(t *testing.T) {
	j := &recordingTxnJournal{}
	c := New()
	c.SetJournal(j)
	if vote, _, err := c.Prepare(prep("t", 0, 3)); err != nil || !vote {
		t.Fatalf("prepare: %v %v", vote, err)
	}
	if len(j.prepares) != 1 || j.prepares[0].ID != "t" || j.synced != j.seq {
		t.Fatalf("prepare not journaled+synced: %+v synced=%d seq=%d", j.prepares, j.synced, j.seq)
	}
	ver, err := c.Decide("t", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.decides) != 1 || len(j.appends) != 1 || j.appends[0][0].Version != ver || j.synced != j.seq {
		t.Fatalf("decision not journaled with its record: decides=%v appends=%+v", j.decides, j.appends)
	}
	if err := c.Forget("t"); err != nil {
		t.Fatal(err)
	}
	if len(j.forgets) != 1 || j.synced != j.seq {
		t.Fatalf("forget not journaled+synced: %v", j.forgets)
	}
}

// TestPrepareSyncFailureRefusesVote: an unreplicated certifier whose
// journal sync fails must NOT vote yes — the vote's durability is the
// whole point of the prepare.
func TestPrepareSyncFailureRefusesVote(t *testing.T) {
	j := &recordingTxnJournal{syncErr: errSyncFailed}
	c := New()
	c.SetJournal(j)
	vote, _, err := c.Prepare(prep("t", 0, 3))
	if vote {
		t.Fatal("voted yes on an undurable prepare")
	}
	if err == nil || !strings.Contains(err.Error(), "vote outcome unknown") {
		t.Fatalf("err = %v", err)
	}
}

var errSyncFailed = &syncError{}

type syncError struct{}

func (*syncError) Error() string { return "sync failed" }

// TestRestoreTwoPCRecommitsTornDecision pins the torn-tail recovery
// argument: the decision frame leads the record frames in one write,
// so recovery can find a commit decision whose record was lost. The
// decided version must equal recovered-version+1 (journal appends are
// version-ordered) and the fragment is re-committed from the prepared
// writeset at exactly that version.
func TestRestoreTwoPCRecommitsTornDecision(t *testing.T) {
	// Recovered history: versions 1..2; decision for "t" at version 3,
	// record torn off.
	base := []Record{
		{Version: 1, Writeset: ws(1)},
		{Version: 2, Writeset: ws(2)},
	}
	c := NewFromRecords(base, 0)
	prepared := []PreparedTxn{prep("t", 2, 9)}
	decisions := map[string]TwoPCDecision{"t": {Commit: true, Version: 3}}
	if err := c.RestoreTwoPC(prepared, decisions); err != nil {
		t.Fatal(err)
	}
	if c.Version() != 3 {
		t.Fatalf("version after re-commit = %d, want 3", c.Version())
	}
	recs := c.Since(2)
	if len(recs) != 1 || recs[0].Version != 3 || recs[0].Writeset.Entries[0].Key.Row != 9 {
		t.Fatalf("re-committed record: %+v", recs)
	}
	if len(c.InDoubt()) != 0 {
		t.Fatalf("re-committed txn still in doubt: %+v", c.InDoubt())
	}
	// A gap between the decision and the log is corruption, not a tear.
	c2 := NewFromRecords(base, 0)
	bad := map[string]TwoPCDecision{"t": {Commit: true, Version: 5}}
	if err := c2.RestoreTwoPC(prepared, bad); err == nil {
		t.Fatal("version gap accepted")
	}
}

// TestRestoreTwoPCInDoubt: an undecided prepare relocks its keys on
// recovery and stays queryable via InDoubt until resolved.
func TestRestoreTwoPCInDoubt(t *testing.T) {
	c := NewFromRecords([]Record{{Version: 1, Writeset: ws(1)}}, 0)
	if err := c.RestoreTwoPC([]PreparedTxn{prep("d", 1, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.InDoubt(); len(got) != 1 || got[0].ID != "d" {
		t.Fatalf("in doubt: %+v", got)
	}
	if out, _ := c.Certify(c.Version(), ws(4)); out.Committed {
		t.Fatal("certified past a recovered in-doubt lock")
	}
	// Resolution (here: abort) releases it.
	if _, err := c.Decide("d", false); err != nil {
		t.Fatal(err)
	}
	if out, _ := c.Certify(c.Version(), ws(4)); !out.Committed {
		t.Fatal("lock survived resolution")
	}
}
