package certifier

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/writeset"
)

func oneRow(row int64) writeset.Writeset {
	return writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "t", Row: row}, Value: "v"},
	})
}

// fillPending enqueues n parked requests directly, as arrivals during
// an in-flight flush would.
func fillPending(b *Batcher, start int64, n int) {
	b.mu.Lock()
	for i := 0; i < n; i++ {
		b.pending = append(b.pending, &pendingCert{
			req:  Request{Snapshot: b.cert.Version(), Writeset: oneRow(start + int64(i))},
			done: make(chan struct{}),
		})
	}
	b.mu.Unlock()
}

func window(b *Batcher) time.Duration {
	_, _, w := b.BatchStats()
	return w
}

// TestAdaptiveWindowWidensAndCollapses drives flushOnce directly and
// pins the window state machine: zero at rest, minWindow after the
// first full batch, doubling up to the cap under sustained pressure,
// collapsing back to zero once batches run down to one request.
func TestAdaptiveWindowWidensAndCollapses(t *testing.T) {
	const maxBatch = 16
	b := NewBatcher(New(), maxBatch)
	if w := window(b); w != 0 {
		t.Fatalf("initial window = %v, want 0", w)
	}

	row := int64(0)
	full := func() {
		fillPending(b, row, maxBatch)
		row += maxBatch
		b.flushOnce()
	}
	full()
	if w := window(b); w != minWindow {
		t.Fatalf("window after first full batch = %v, want %v", w, minWindow)
	}
	full()
	if w := window(b); w != 2*minWindow {
		t.Fatalf("window after second full batch = %v, want %v", w, 2*minWindow)
	}
	for i := 0; i < 10; i++ {
		full()
	}
	if w := window(b); w != DefaultMaxWindow {
		t.Fatalf("window under sustained pressure = %v, want cap %v", w, DefaultMaxWindow)
	}

	// Small partial batches (n < maxBatch/4) halve the window...
	fillPending(b, row, 3)
	row += 3
	b.flushOnce()
	if w := window(b); w != DefaultMaxWindow/2 {
		t.Fatalf("window after small batch = %v, want %v", w, DefaultMaxWindow/2)
	}
	// ...and a batch of one collapses it outright.
	fillPending(b, row, 1)
	row++
	b.flushOnce()
	if w := window(b); w != 0 {
		t.Fatalf("window after batch of one = %v, want 0", w)
	}
}

// TestSetMaxWindowDisables: a zero cap pins the window at zero no
// matter the pressure, and clamps an already-widened window down.
func TestSetMaxWindowDisables(t *testing.T) {
	const maxBatch = 8
	b := NewBatcher(New(), maxBatch)
	fillPending(b, 0, maxBatch)
	b.flushOnce()
	if w := window(b); w == 0 {
		t.Fatal("precondition: window should have widened")
	}
	b.SetMaxWindow(0)
	if w := window(b); w != 0 {
		t.Fatalf("SetMaxWindow(0) left window at %v", w)
	}
	fillPending(b, 100, maxBatch)
	b.flushOnce()
	if w := window(b); w != 0 {
		t.Fatalf("window widened to %v with a zero cap", w)
	}
}

// TestFirstArriverFlushesImmediately: with no flush in flight a lone
// request must not wait out any accumulation window.
func TestFirstArriverFlushesImmediately(t *testing.T) {
	b := NewBatcher(New(), 0)
	b.SetMaxWindow(500 * time.Millisecond)
	start := time.Now()
	out, err := b.Certify(b.cert.Version(), oneRow(1))
	if err != nil || !out.Committed {
		t.Fatalf("Certify = %+v, %v", out, err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("lone request took %v; the first arriver must flush immediately", d)
	}
}

// TestDrainCutsBatches parks a backlog the way arrivals during a flush
// do, runs the backlog drainer exactly as a retiring flusher would,
// and checks the batching arithmetic: every request answered, one
// batch per maxBatch requests (so the accumulation window actually
// amortizes), and the flusher role released at the end.
func TestDrainCutsBatches(t *testing.T) {
	const maxBatch = 64
	const n = 400
	b := NewBatcher(New(), maxBatch)
	fillPending(b, 0, n)
	b.mu.Lock()
	b.flushing = true
	parked := append([]*pendingCert(nil), b.pending...)
	b.mu.Unlock()

	b.drain()

	for i, p := range parked {
		select {
		case <-p.done:
		default:
			t.Fatalf("request %d never completed", i)
		}
		if p.res.Err != nil || !p.res.Outcome.Committed {
			t.Fatalf("disjoint request %d = %+v", i, p.res)
		}
	}
	batches, requests, _ := b.BatchStats()
	if requests != n {
		t.Fatalf("BatchStats requests = %d, want %d", requests, n)
	}
	if want := int64((n + maxBatch - 1) / maxBatch); batches != want {
		t.Fatalf("backlog of %d cut into %d batches, want %d", n, batches, want)
	}
	if v := b.cert.Version(); v != n {
		t.Fatalf("certifier version = %d, want %d", v, n)
	}
	b.mu.Lock()
	flushing := b.flushing
	b.mu.Unlock()
	if flushing {
		t.Fatal("drain retired without releasing the flusher role")
	}
}

// TestAdaptiveBatcherConcurrent is the black-box smoke: a concurrent
// burst of disjoint certifications all commit with distinct versions.
func TestAdaptiveBatcherConcurrent(t *testing.T) {
	b := NewBatcher(New(), 0)
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(row int64) {
			defer wg.Done()
			out, err := b.Certify(0, oneRow(row))
			if err != nil {
				errs <- err
				return
			}
			if !out.Committed {
				errs <- fmt.Errorf("disjoint row %d aborted", row)
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v := b.cert.Version(); v != n {
		t.Fatalf("certifier version = %d, want %d", v, n)
	}
}
