package certifier

import (
	"testing"

	"repro/internal/paxos"
)

// foldScenario builds the divergence hazard the fold path exists for:
// leader A (node 0) certifies versions 1..3, then its in-flight
// proposal for version 4 reaches only its own acceptor (a deposal
// mid-accept). Node 0 is unreachable while node 1 campaigns, so the
// new leader recovers only slots 0..2 and has no idea slot 3 exists —
// until its own first proposal's phase 1 resurrects the stale value.
func foldScenario(t *testing.T) *Certifier {
	t.Helper()
	accs := []*paxos.Acceptor{paxos.NewAcceptor(0), paxos.NewAcceptor(1), paxos.NewAcceptor(2)}
	tr := paxos.NewLocalTransport(accs...)
	a := NewReplicatedOver(0, []int{0, 1, 2}, tr, true)
	for i := int64(1); i <= 3; i++ {
		if out, err := a.Certify(i-1, ws(i)); err != nil || !out.Committed {
			t.Fatalf("seed certify %d: %+v %v", i, out, err)
		}
	}
	staleWS := ws(100)
	staleWS.Entries[0].Value = "stale"
	stale, err := encodeRecord(Record{Version: 4, Writeset: staleWS})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := accs[0].Accept(a.Epoch(), 3, stale); err != nil || !rep.OK {
		t.Fatalf("stale accept: %+v %v", rep, err)
	}
	tr.SetDown(0, true)
	b, _, err := Promote(1, []int{0, 1, 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Version(); got != 3 {
		t.Fatalf("promoted at version %d, want 3 (slot 3 must be invisible)", got)
	}
	tr.SetDown(0, false)
	return b
}

// TestCertifyFoldsResurrectedProposal pins the fix for the
// divergence: when the new leader's proposal adopts the deposed
// leader's resurrected value, that value must be folded into the log
// at the version it embeds, and the leader's own record re-versioned
// behind it. Certifying around it would choose two different records
// with the same version — which record a replica applies would then
// depend on which leader it heard it from.
func TestCertifyFoldsResurrectedProposal(t *testing.T) {
	b := foldScenario(t)
	out, err := b.Certify(3, ws(200))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed || out.Version != 5 {
		t.Fatalf("certify after fold = %+v, want commit at version 5", out)
	}
	recs := b.Since(3)
	if len(recs) != 2 || recs[0].Version != 4 || recs[1].Version != 5 {
		t.Fatalf("folded log suffix: %+v", recs)
	}
	if recs[0].Writeset.Entries[0].Key.Row != 100 {
		t.Fatalf("version 4 is not the resurrected record: %+v", recs[0])
	}
	if recs[1].Writeset.Entries[0].Key.Row != 200 {
		t.Fatalf("version 5 is not the new leader's record: %+v", recs[1])
	}
}

// TestCertifyFoldConflictAborts: the folded record commits, and the
// new leader's own transaction must re-run the conflict check against
// it — here they write the same key, so the transaction aborts against
// the resurrected version 4 instead of committing a lost update.
func TestCertifyFoldConflictAborts(t *testing.T) {
	b := foldScenario(t)
	out, err := b.Certify(3, ws(100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed || out.ConflictWith != 4 {
		t.Fatalf("want abort against folded version 4, got %+v", out)
	}
	if got := b.Version(); got != 4 {
		t.Fatalf("version %d after fold+abort, want 4", got)
	}
}

// TestCertifyBatchFoldsResurrectedProposal: the group-commit path
// re-stages the whole batch after a fold — versions shift by one and
// a request colliding with the resurrected record flips to an abort.
func TestCertifyBatchFoldsResurrectedProposal(t *testing.T) {
	b := foldScenario(t)
	results, err := b.CertifyBatch([]Request{
		{Snapshot: 3, Writeset: ws(200)},
		{Snapshot: 3, Writeset: ws(100)}, // collides with the resurrected record
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Outcome.Committed || results[0].Outcome.Version != 5 {
		t.Fatalf("batch[0] = %+v, want commit at version 5", results[0].Outcome)
	}
	if results[1].Outcome.Committed || results[1].Outcome.ConflictWith != 4 {
		t.Fatalf("batch[1] = %+v, want abort against folded version 4", results[1].Outcome)
	}
	recs := b.Since(3)
	if len(recs) != 2 || recs[0].Version != 4 || recs[1].Version != 5 {
		t.Fatalf("folded log suffix: %+v", recs)
	}
}
