// Two-phase commit over certification: the cross-shard commit
// protocol of the partitioned deployment (docs/SHARDING.md).
//
// A cross-shard transaction's writeset is split per shard group and
// each fragment is PREPARED at its group's certifier: the fragment is
// conflict-checked exactly like a commit, but instead of receiving a
// version it is journaled as an in-doubt transaction and its keys are
// locked against later certifications. A prepared fragment is a
// binding yes-vote — the group guarantees it can commit the fragment
// whenever the decision arrives, because nothing conflicting can
// certify past the lock.
//
// The coordinator group's durable DECIDE record is the commit point.
// Deciding commit assigns the fragment the next global version and
// routes it through the ordinary record log, so propagation, GC,
// recovery and the MVA model all see a perfectly normal commit;
// deciding abort just releases the locks. The protocol is
// presumed-abort: a participant that recovers in doubt asks the
// coordinator group (Resolve), and a coordinator that has no durable
// decision for the transaction answers abort — writing that abort
// down first, so a delayed commit decision can never contradict it.
package certifier

import (
	"encoding/json"
	"fmt"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

// PreparedTxn is one in-doubt cross-shard transaction fragment: the
// writeset a shard group has voted yes on and locked, keyed by the
// globally unique transaction id the router coordinator minted.
type PreparedTxn struct {
	// ID is the cross-shard transaction id (unique across restarts).
	ID string
	// Coord is the coordinator shard group's id — where Resolve asks.
	Coord int64
	// Snapshot is the GSI snapshot the fragment was certified against.
	Snapshot int64
	// Writeset is this group's fragment of the transaction.
	Writeset writeset.Writeset
}

// TwoPCDecision is a durable commit/abort decision for one prepared
// transaction. Version is the global version a commit was assigned
// (0 for aborts); recovery uses it to detect a decision whose record
// frames were torn off the log.
type TwoPCDecision struct {
	Commit  bool
	Version int64
}

// TxnJournal is the optional two-phase-commit extension of Journal: a
// write-ahead log that can journal prepares, decisions and forgets.
// AppendDecision writes the decision frame and, for commits, the
// decided record's writeset and commit marker in ONE write — with the
// decision frame first, so a torn tail can lose the record but never
// the decision (recovery re-commits from the prepared writeset; see
// RestoreTwoPC). All three return a sequence for Journal.Sync.
type TxnJournal interface {
	AppendPrepare(p PreparedTxn) (seq int64, err error)
	AppendDecision(txn string, commit bool, version int64, recs []Record) (seq int64, err error)
	AppendForget(txn string) (seq int64, err error)
}

// twoPCValue is the Paxos encoding of a 2PC operation on a replicated
// certifier. It deliberately embeds the Record fields: a decide-commit
// value IS the committed record (Version > 0), so every pre-2PC
// decoder — Recover, ReconcileLog, foldLocked — treats it as an
// ordinary log entry, while prepares and aborts carry Version 0 and
// are skipped by those paths. Op distinguishes the operations for the
// 2PC-aware recovery pass.
type twoPCValue struct {
	Version  int64
	Writeset writeset.Writeset
	Txn      string
	Op       string // "prepare" | "decide" | "forget"
	Commit   bool
	Coord    int64
	Snapshot int64
}

func encodeTwoPC(v twoPCValue) (paxos.Value, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("certifier: encode 2pc: %w", err)
	}
	return paxos.Value(b), nil
}

// decodeTwoPC extracts the 2PC operation from a Paxos value, ok=false
// for ordinary records, batches and noops.
func decodeTwoPC(v paxos.Value) (twoPCValue, bool) {
	if v == "" || v == noopValue || len(v) > maxEncodedRecord || v[0] != '{' {
		return twoPCValue{}, false
	}
	var t twoPCValue
	if err := json.Unmarshal([]byte(v), &t); err != nil || t.Op == "" {
		return twoPCValue{}, false
	}
	return t, true
}

// ensureTwoPCLocked lazily allocates the 2PC state (most certifiers
// never see a cross-shard transaction).
func (c *Certifier) ensureTwoPCLocked() {
	if c.prepared == nil {
		c.prepared = make(map[string]PreparedTxn)
		c.prepIndex = make(map[writeset.Key]string)
		c.decisions = make(map[string]TwoPCDecision)
	}
}

// prepConflictLocked reports whether ws overlaps a key locked by a
// prepared transaction other than id. Such an overlap blocks both
// ordinary certification and competing prepares: the prepared fragment
// holds a binding yes-vote and nothing may certify past its lock until
// the decision lands.
func (c *Certifier) prepConflictLocked(id string, ws writeset.Writeset) bool {
	if len(c.prepIndex) == 0 {
		return false
	}
	for _, e := range ws.Entries {
		if owner, ok := c.prepIndex[e.Key]; ok && owner != id {
			return true
		}
	}
	return false
}

// lockLocked installs a prepared transaction and its key locks.
func (c *Certifier) lockLocked(p PreparedTxn) {
	c.ensureTwoPCLocked()
	c.prepared[p.ID] = p
	for _, e := range p.Writeset.Entries {
		c.prepIndex[e.Key] = p.ID
	}
}

// unlockLocked releases a prepared transaction's key locks.
func (c *Certifier) unlockLocked(id string) {
	p, ok := c.prepared[id]
	if !ok {
		return
	}
	delete(c.prepared, id)
	for _, e := range p.Writeset.Entries {
		if c.prepIndex[e.Key] == id {
			delete(c.prepIndex, e.Key)
		}
	}
}

// Prepare runs the first 2PC phase for one transaction fragment: the
// conflict test of Certify, but on success the fragment is journaled
// in doubt and its keys locked instead of committing. vote=true is a
// binding promise that a later Decide(id, true) will commit. Prepare
// is idempotent on id. A replicated certifier proposes the prepare to
// its Paxos group first, so a promoted backup inherits the lock.
func (c *Certifier) Prepare(p PreparedTxn) (vote bool, conflictWith int64, err error) {
	c.mu.Lock()
	c.ensureTwoPCLocked()
	if err := c.admitLocked(p.Snapshot, p.Writeset); err != nil {
		c.mu.Unlock()
		return false, 0, err
	}
	if _, ok := c.prepared[p.ID]; ok {
		c.mu.Unlock()
		return true, 0, nil // duplicate prepare: the vote stands
	}
	if d, ok := c.decisions[p.ID]; ok {
		c.mu.Unlock()
		return d.Commit, 0, nil // already decided: echo the outcome
	}
	if conflict, with := c.conflictLocked(p.Snapshot, p.Writeset); conflict {
		c.aborts++
		c.mu.Unlock()
		return false, with, nil
	}
	if c.prepConflictLocked(p.ID, p.Writeset) {
		c.aborts++
		c.mu.Unlock()
		return false, 0, nil // blocked by a concurrent in-doubt fragment
	}
	if c.proposer != nil {
		val, err := encodeTwoPC(twoPCValue{
			Txn: p.ID, Op: "prepare", Coord: p.Coord,
			Snapshot: p.Snapshot, Writeset: p.Writeset,
		})
		if err != nil {
			c.mu.Unlock()
			return false, 0, err
		}
		// The propose loop mirrors Certify: a slot may adopt a competing
		// value, which must be folded in and the conflict test redone —
		// the vote is not cast until our own value is chosen.
		for attempts := 0; ; attempts++ {
			if attempts == 1000 {
				c.mu.Unlock()
				return false, 0, fmt.Errorf("certifier: proposer starved")
			}
			_, chosen, err := c.proposer.ProposeNext(val)
			if err != nil {
				c.mu.Unlock()
				return false, 0, replicationError(err)
			}
			if chosen == val {
				break
			}
			if err := c.foldLocked(chosen); err != nil {
				c.mu.Unlock()
				return false, 0, err
			}
			if conflict, with := c.conflictLocked(p.Snapshot, p.Writeset); conflict {
				c.aborts++
				c.mu.Unlock()
				return false, with, nil
			}
		}
	}
	var seq int64
	var j Journal
	if tj, ok := c.journal.(TxnJournal); ok {
		var aerr error
		if seq, aerr = tj.AppendPrepare(p); aerr != nil {
			if c.proposer == nil {
				c.mu.Unlock()
				return false, 0, fmt.Errorf("certifier: journal prepare: %w", aerr)
			}
			c.detachJournalLocked(aerr)
		} else {
			j = c.journal
		}
	}
	c.lockLocked(p)
	c.mu.Unlock()
	if j != nil {
		if err := j.Sync(seq); err != nil {
			if c.proposer == nil {
				// The vote's durability is unknown: refuse it. The lock
				// stays held; the coordinator's abort decision (or
				// recovery's Resolve) will release it.
				return false, 0, fmt.Errorf("certifier: journal sync (vote outcome unknown): %w", err)
			}
			c.mu.Lock()
			c.detachJournalLocked(err)
			c.mu.Unlock()
		}
	}
	return true, 0, nil
}

// Decide applies the coordinator's decision to a prepared transaction.
// Commit assigns the next global version and routes the fragment
// through the ordinary record log (journal, Paxos, Since) so every
// downstream consumer sees a normal commit; abort releases the locks.
// The decision is journaled durably before Decide returns, and the
// call is idempotent — a duplicate returns the recorded outcome.
// Deciding commit for a transaction this certifier never prepared is
// an error (the prepare's durability was the vote's whole point).
func (c *Certifier) Decide(id string, commit bool) (version int64, err error) {
	c.mu.Lock()
	c.ensureTwoPCLocked()
	if d, ok := c.decisions[id]; ok {
		c.mu.Unlock()
		if d.Commit != commit {
			return 0, fmt.Errorf("certifier: txn %s already decided %v", id, d.Commit)
		}
		return d.Version, nil
	}
	p, prepared := c.prepared[id]
	if !prepared && commit {
		c.mu.Unlock()
		return 0, fmt.Errorf("certifier: commit decision for unknown txn %s", id)
	}
	var rec Record
	if commit {
		rec = Record{Version: c.version + 1, Writeset: p.Writeset}
	}
	if c.proposer != nil {
		// The quorum must learn the decision: a promoted backup that
		// lost the leader's memory still answers Resolve correctly. A
		// decide-commit value doubles as the record itself (Version > 0),
		// so pre-2PC recovery paths fold it like any commit.
		for attempts := 0; ; attempts++ {
			if attempts == 1000 {
				c.mu.Unlock()
				return 0, fmt.Errorf("certifier: proposer starved")
			}
			val, verr := encodeTwoPC(twoPCValue{
				Version: rec.Version, Writeset: rec.Writeset,
				Txn: id, Op: "decide", Commit: commit,
			})
			if verr != nil {
				c.mu.Unlock()
				return 0, verr
			}
			_, chosen, perr := c.proposer.ProposeNext(val)
			if perr != nil {
				c.mu.Unlock()
				return 0, replicationError(perr)
			}
			if chosen == val {
				break
			}
			// No conflict recheck: the prepared locks guarantee nothing
			// conflicting certified since the vote. Only the version
			// shifts under the folded records.
			if ferr := c.foldLocked(chosen); ferr != nil {
				c.mu.Unlock()
				return 0, ferr
			}
			if commit {
				rec.Version = c.version + 1
			}
		}
	}
	var seq int64
	var j Journal
	if c.journal != nil {
		var aerr error
		if tj, ok := c.journal.(TxnJournal); ok {
			var recs []Record
			if commit {
				recs = []Record{rec}
			}
			seq, aerr = tj.AppendDecision(id, commit, rec.Version, recs)
		} else if commit {
			seq, aerr = c.journal.Append([]Record{rec})
		}
		if aerr != nil {
			if c.proposer == nil {
				c.mu.Unlock()
				return 0, fmt.Errorf("certifier: journal decision: %w", aerr)
			}
			c.detachJournalLocked(aerr)
		} else if c.journal != nil {
			j = c.journal
		}
	}
	c.unlockLocked(id)
	if commit {
		c.applyLocked(rec)
		version = rec.Version
	} else {
		c.aborts++
	}
	c.decisions[id] = TwoPCDecision{Commit: commit, Version: version}
	c.mu.Unlock()
	if j != nil {
		if err := j.Sync(seq); err != nil {
			if c.proposer == nil {
				return 0, fmt.Errorf("certifier: journal sync (decision outcome unknown): %w", err)
			}
			c.mu.Lock()
			c.detachJournalLocked(err)
			c.mu.Unlock()
			return version, nil
		}
		if commit {
			c.markDurable(version)
		}
	}
	return version, nil
}

// Resolve answers a recovering participant's in-doubt inquiry at the
// coordinator group: the recorded decision if one exists, otherwise
// PRESUMED ABORT — and the abort is written down (journaled, and
// proposed when replicated) before it is answered, so a delayed
// commit decision for the same transaction can never contradict it.
func (c *Certifier) Resolve(id string) (commit bool, err error) {
	c.mu.Lock()
	c.ensureTwoPCLocked()
	if d, ok := c.decisions[id]; ok {
		c.mu.Unlock()
		return d.Commit, nil
	}
	c.mu.Unlock()
	if _, err := c.Decide(id, false); err != nil {
		return false, err
	}
	return false, nil
}

// Forget discards a fully acknowledged transaction's decision record —
// the coordinator calls it once every participant has applied the
// decision, bounding the decisions map. Presumed abort makes
// forgetting aborts safe immediately.
func (c *Certifier) Forget(id string) error {
	c.mu.Lock()
	c.ensureTwoPCLocked()
	_, known := c.decisions[id]
	delete(c.decisions, id)
	c.unlockLocked(id)
	var seq int64
	var j Journal
	if known {
		if tj, ok := c.journal.(TxnJournal); ok {
			var aerr error
			if seq, aerr = tj.AppendForget(id); aerr != nil {
				if c.proposer == nil {
					c.mu.Unlock()
					return fmt.Errorf("certifier: journal forget: %w", aerr)
				}
				c.detachJournalLocked(aerr)
			} else {
				j = c.journal
			}
		}
	}
	c.mu.Unlock()
	if j != nil {
		return j.Sync(seq)
	}
	return nil
}

// InDoubt returns the prepared transactions awaiting a decision, the
// recovery worklist a restarted shard group resolves against each
// fragment's coordinator.
func (c *Certifier) InDoubt() []PreparedTxn {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PreparedTxn, 0, len(c.prepared))
	for _, p := range c.prepared {
		out = append(out, p)
	}
	return out
}

// Decided returns the recorded decision for a transaction, if any —
// the fast path Resolve consults, exposed for status tooling.
func (c *Certifier) Decided(id string) (TwoPCDecision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.decisions[id]
	return d, ok
}

// RestoreTwoPC reinstates recovered 2PC state after NewFromRecords:
// decisions are re-recorded, undecided prepares re-lock their keys
// (in doubt until resolved), and a commit decision whose record frames
// were torn off the log — Version above the recovered history — is
// re-committed from the prepared writeset at that same version. The
// journal, if any, must be attached first so the re-commit is
// re-journaled.
func (c *Certifier) RestoreTwoPC(prepared []PreparedTxn, decisions map[string]TwoPCDecision) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureTwoPCLocked()
	for id, d := range decisions {
		c.decisions[id] = d
	}
	for _, p := range prepared {
		d, decided := decisions[p.ID]
		switch {
		case !decided:
			c.lockLocked(p) // in doubt: lock until Resolve
		case d.Commit && d.Version > c.version:
			// The decision outlived its record (the decision frame leads
			// the record frames in one write; the tail tore between
			// them). Journal appends are version-ordered, so everything
			// at or above the lost version was lost too — the next
			// version IS the decided one.
			if d.Version != c.version+1 {
				return fmt.Errorf("certifier: recovered decision for %s at version %d, log at %d",
					p.ID, d.Version, c.version)
			}
			rec := Record{Version: d.Version, Writeset: p.Writeset}
			if c.journal != nil {
				if _, err := c.journal.Append([]Record{rec}); err != nil {
					return fmt.Errorf("certifier: re-journal recovered decision: %w", err)
				}
			}
			c.applyLocked(rec)
		}
		// Decided (commit landed, or abort): nothing to reinstate.
	}
	c.durable = c.version
	return nil
}

// restoreTwoPCFromLog rebuilds 2PC state from a recovered Paxos log's
// 2PC values, applied in slot order — the failover twin of
// RestoreTwoPC. Called with c.mu held.
func (c *Certifier) restoreTwoPCFromLogLocked(log map[int]paxos.Value) {
	slots := make([]int, 0, len(log))
	for s := range log {
		slots = append(slots, s)
	}
	// Slot order = decision order.
	for i := 0; i < len(slots); i++ {
		for j := i + 1; j < len(slots); j++ {
			if slots[j] < slots[i] {
				slots[i], slots[j] = slots[j], slots[i]
			}
		}
	}
	c.ensureTwoPCLocked()
	for _, s := range slots {
		t, ok := decodeTwoPC(log[s])
		if !ok {
			continue
		}
		switch t.Op {
		case "prepare":
			if _, decided := c.decisions[t.Txn]; !decided {
				c.lockLocked(PreparedTxn{
					ID: t.Txn, Coord: t.Coord,
					Snapshot: t.Snapshot, Writeset: t.Writeset,
				})
			}
		case "decide":
			c.unlockLocked(t.Txn)
			c.decisions[t.Txn] = TwoPCDecision{Commit: t.Commit, Version: t.Version}
		case "forget":
			c.unlockLocked(t.Txn)
			delete(c.decisions, t.Txn)
		}
	}
}

// RestoreTwoPCFromLog rebuilds prepared locks and decisions from a
// recovered Paxos log — Promote and Campaign callers invoke it after
// Recover/ReconcileLog so a promoted backup inherits every in-doubt
// lock and can answer Resolve for decided transactions. Commit records
// themselves were already folded by the record pass (a decide-commit
// value doubles as a record).
func (c *Certifier) RestoreTwoPCFromLog(log map[int]paxos.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restoreTwoPCFromLogLocked(log)
}
