package certifier

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/paxos"
)

// gateJournal is a Journal whose Sync blocks until released (or fails
// with err), for observing the not-yet-durable window.
type gateJournal struct {
	seq      int64
	appended chan struct{}
	release  chan struct{}
	err      error
}

func (g *gateJournal) Append(recs []Record) (int64, error) {
	g.seq++
	close(g.appended)
	return g.seq, nil
}

func (g *gateJournal) Sync(seq int64) error {
	<-g.release
	return g.err
}

// TestSinceWithholdsUndurableRecords pins the propagation/durability
// ordering: a certified record must not be served by Since until its
// journal sync completes — a peer must never replicate a commit a
// power loss could still erase from this certifier (the version would
// be reassigned on recovery and the peer would skip its replacement).
func TestSinceWithholdsUndurableRecords(t *testing.T) {
	g := &gateJournal{appended: make(chan struct{}), release: make(chan struct{})}
	c := New()
	c.SetJournal(g)
	done := make(chan Outcome, 1)
	go func() {
		out, err := c.Certify(0, ws(1))
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	<-g.appended // staged in the journal, sync still pending
	if recs := c.Since(0); len(recs) != 0 {
		t.Fatalf("un-synced record served to peers: %+v", recs)
	}
	close(g.release)
	out := <-done
	if !out.Committed || out.Version != 1 {
		t.Fatalf("certify outcome %+v", out)
	}
	if recs := c.Since(0); len(recs) != 1 || recs[0].Version != 1 {
		t.Fatalf("durable record not served: %+v", recs)
	}
}

// TestSinceWithholdsAfterSyncFailure: a failed sync leaves the record
// in memory (the outcome is unknown) but permanently invisible to
// propagation, so the cluster converges on the durable prefix.
func TestSinceWithholdsAfterSyncFailure(t *testing.T) {
	g := &gateJournal{appended: make(chan struct{}), release: make(chan struct{}), err: errors.New("disk gone")}
	close(g.release)
	c := New()
	c.SetJournal(g)
	if _, err := c.Certify(0, ws(1)); err == nil {
		t.Fatal("certify acknowledged a commit whose sync failed")
	}
	if recs := c.Since(0); len(recs) != 0 {
		t.Fatalf("non-durable record served to peers: %+v", recs)
	}
}

// TestRecoverMixedBatchedAndSingleEntries closes the gap left by PR 1:
// a log interleaving group-committed batches and single entries must
// recover a certifier whose lowWater and Since are indistinguishable
// from one that never restarted.
func TestRecoverMixedBatchedAndSingleEntries(t *testing.T) {
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: single, batch of 3 (with one intra-batch abort),
	// single, batch of 2, single — slots 0..4.
	if _, err := c.Certify(0, ws(1)); err != nil {
		t.Fatal(err)
	}
	results, err := c.CertifyBatch([]Request{
		{Snapshot: 1, Writeset: ws(2)},
		{Snapshot: 0, Writeset: ws(1)}, // conflicts with version 1
		{Snapshot: 1, Writeset: ws(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Outcome.Committed {
		t.Fatal("intra-batch conflict committed")
	}
	if _, err := c.Certify(c.Version(), ws(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CertifyBatch([]Request{
		{Snapshot: c.Version(), Writeset: ws(5)},
		{Snapshot: c.Version(), Writeset: ws(6)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Certify(c.Version(), ws(7, 8)); err != nil {
		t.Fatal(err)
	}

	p1 := paxos.NewProposer(1, []int{0, 1, 2}, tr)
	log, err := p1.Recover(4, "noop")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := r.Version(), c.Version(); got != want {
		t.Fatalf("recovered version %d, original %d", got, want)
	}
	if got, want := r.LogLen(), c.LogLen(); got != want {
		t.Fatalf("recovered log length %d, original %d", got, want)
	}
	if got, want := r.LowWater(), c.LowWater(); got != want {
		t.Fatalf("recovered lowWater %d, original %d", got, want)
	}
	// Since must agree at every cursor position, batched entries
	// flattened back into their individual records.
	for v := int64(0); v <= c.Version(); v++ {
		got, want := r.Since(v), c.Since(v)
		if len(got) != len(want) {
			t.Fatalf("Since(%d): %d records recovered, %d original", v, len(got), len(want))
		}
		for i := range got {
			if got[i].Version != want[i].Version ||
				!reflect.DeepEqual(got[i].Writeset.Entries, want[i].Writeset.Entries) {
				t.Fatalf("Since(%d)[%d]: %+v vs %+v", v, i, got[i], want[i])
			}
		}
	}
	// Identical conflict decisions over every key and snapshot.
	for key := int64(1); key <= 8; key++ {
		for snap := int64(0); snap <= c.Version(); snap++ {
			gc, gv := r.Check(snap, ws(key))
			oc, ov := c.Check(snap, ws(key))
			if gc != oc || gv != ov {
				t.Fatalf("Check(key %d, snap %d): recovered (%v,%d), original (%v,%d)",
					key, snap, gc, gv, oc, ov)
			}
		}
	}
}

// TestRecoverMixedLogWithCompactedPrefix drives the same comparison
// when the early slots were compacted to no-ops: the recovered
// lowWater must equal that of a never-restarted certifier GC'd to the
// same horizon, and Since must agree over the retained suffix.
func TestRecoverMixedLogWithCompactedPrefix(t *testing.T) {
	// Never-restarted reference: versions 1..6 certified (batch 1-3,
	// singles 4 and 5, batch 6), then GC'd up to version 3.
	ref := New()
	if _, err := ref.CertifyBatch([]Request{
		{Snapshot: 0, Writeset: ws(1)},
		{Snapshot: 0, Writeset: ws(2)},
		{Snapshot: 0, Writeset: ws(3)},
	}); err != nil {
		t.Fatal(err)
	}
	for v := int64(4); v <= 5; v++ {
		if _, err := ref.Certify(ref.Version(), ws(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.CertifyBatch([]Request{{Snapshot: 5, Writeset: ws(6)}}); err != nil {
		t.Fatal(err)
	}
	ref.GC(3)

	// The compacted log a backup would recover: no-op slots for the
	// pruned batch, then a mixed single/batch suffix.
	log := map[int]paxos.Value{0: "noop"}
	v4, err := encodeRecord(Record{Version: 4, Writeset: ws(4)})
	if err != nil {
		t.Fatal(err)
	}
	v5, err := encodeRecord(Record{Version: 5, Writeset: ws(5)})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := encodeBatch([]Record{{Version: 6, Writeset: ws(6)}})
	if err != nil {
		t.Fatal(err)
	}
	log[1], log[2], log[3] = v4, v5, batch

	r, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.LowWater(), ref.LowWater(); got != want {
		t.Fatalf("recovered lowWater %d, reference %d", got, want)
	}
	for v := int64(3); v <= 6; v++ {
		got, want := r.Since(v), ref.Since(v)
		if len(got) != len(want) {
			t.Fatalf("Since(%d): %d vs %d records", v, len(got), len(want))
		}
		for i := range got {
			if got[i].Version != want[i].Version {
				t.Fatalf("Since(%d)[%d]: version %d vs %d", v, i, got[i].Version, want[i].Version)
			}
		}
	}
	// Both reject pre-horizon snapshots the same way.
	_, errR := r.Certify(2, ws(99))
	_, errRef := ref.Certify(2, ws(99))
	if (errR == nil) != (errRef == nil) {
		t.Fatalf("pre-horizon admit differs: recovered %v, reference %v", errR, errRef)
	}
	if errR == nil {
		t.Fatal("pre-horizon snapshot accepted")
	}
	// And both accept an at-horizon snapshot with the same next version.
	outR, err := r.Certify(3, ws(99))
	if err != nil || !outR.Committed {
		t.Fatalf("recovered at-horizon certify: %+v %v", outR, err)
	}
	outRef, err := ref.Certify(3, ws(99))
	if err != nil || !outRef.Committed || outRef.Version != outR.Version {
		t.Fatalf("reference at-horizon certify: %+v vs %+v (%v)", outRef, outR, err)
	}
}
