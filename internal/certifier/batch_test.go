package certifier

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

func TestCertifyBatchMatchesSequential(t *testing.T) {
	// The same request stream, certified one by one and as a batch,
	// must produce identical outcomes (group commit changes durability
	// cost, never decisions).
	reqs := []Request{
		{Snapshot: 0, Writeset: ws(1, 2)},
		{Snapshot: 0, Writeset: ws(3)},
		{Snapshot: 0, Writeset: ws(2, 4)}, // intra-batch conflict with the first
		{Snapshot: 2, Writeset: ws(3)},    // conflicts with the second (version 2)
	}
	seq := New()
	var want []Outcome
	for _, r := range reqs {
		out, err := seq.Certify(r.Snapshot, r.Writeset)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out)
	}
	bat := New()
	results, err := bat.CertifyBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if res.Outcome != want[i] {
			t.Fatalf("request %d: batch %+v, sequential %+v", i, res.Outcome, want[i])
		}
	}
	if bat.Version() != seq.Version() {
		t.Fatalf("versions diverged: %d != %d", bat.Version(), seq.Version())
	}
	bc, ba := bat.Stats()
	sc, sa := seq.Stats()
	if bc != sc || ba != sa {
		t.Fatalf("stats diverged: %d/%d != %d/%d", bc, ba, sc, sa)
	}
}

func TestCertifyBatchPerRequestErrors(t *testing.T) {
	c := New()
	for i := int64(1); i <= 10; i++ {
		if _, err := c.Certify(c.Version(), ws(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.GC(5)
	results, err := c.CertifyBatch([]Request{
		{Snapshot: 2, Writeset: ws(99)},  // below pruning horizon
		{Snapshot: 10, Writeset: ws()},   // empty writeset
		{Snapshot: 10, Writeset: ws(50)}, // fine
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("pre-horizon snapshot accepted in batch")
	}
	if results[1].Err == nil {
		t.Fatal("empty writeset accepted in batch")
	}
	if results[2].Err != nil || !results[2].Outcome.Committed || results[2].Outcome.Version != 11 {
		t.Fatalf("valid request in mixed batch: %+v", results[2])
	}
}

func TestCertifyBatchReplicatedUsesOneSlot(t *testing.T) {
	c, _, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := int64(0); i < 32; i++ {
		reqs = append(reqs, Request{Snapshot: 0, Writeset: ws(i)})
	}
	results, err := c.CertifyBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil || !res.Outcome.Committed {
			t.Fatalf("request %d: %+v", i, res)
		}
	}
	if got := c.ReplicationSlots(); got != 1 {
		t.Fatalf("32 batched commits used %d Paxos slots, want 1", got)
	}
}

func TestCertifyBatchReplicationFailureLeavesNoState(t *testing.T) {
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetDown(1, true)
	tr.SetDown(2, true)
	if _, err := c.CertifyBatch([]Request{{Snapshot: 0, Writeset: ws(1)}}); err == nil {
		t.Fatal("batch acknowledged without a majority")
	}
	if c.Version() != 0 || c.LogLen() != 0 || c.IndexSize() != 0 {
		t.Fatalf("failed batch left state: version=%d log=%d index=%d",
			c.Version(), c.LogLen(), c.IndexSize())
	}
	commits, _ := c.Stats()
	if commits != 0 {
		t.Fatalf("failed batch counted %d commits", commits)
	}
}

func TestBatcherGroupCommit(t *testing.T) {
	// Concurrent clients certify disjoint writesets through the
	// batcher against a replicated certifier: every request commits
	// exactly once and versions stay dense. (Slot amortization is
	// asserted by TestBatcherAmortizesPaxosRounds, which controls the
	// timing; here the in-process Paxos round is so fast that batch
	// sizes depend on scheduling.)
	c, _, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(c, 0)
	const clients = 16
	const perClient = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	versions := make(map[int64]bool)
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := int64(w*perClient + i) // disjoint keys: all commit
				out, err := b.Certify(0, ws(key))
				if err != nil {
					t.Error(err)
					return
				}
				if !out.Committed {
					t.Errorf("disjoint writeset aborted: %+v", out)
					return
				}
				mu.Lock()
				versions[out.Version] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := int64(clients * perClient)
	if c.Version() != total {
		t.Fatalf("version = %d, want %d", c.Version(), total)
	}
	for v := int64(1); v <= total; v++ {
		if !versions[v] {
			t.Fatalf("version %d never handed out", v)
		}
	}
}

// gatedTransport delays Accept traffic until the gate opens, modeling
// a Paxos round with real network latency. first is closed when the
// first Accept arrives (the flush is provably in flight).
type gatedTransport struct {
	*paxos.LocalTransport
	gate      chan struct{}
	firstOnce sync.Once
	first     chan struct{}
}

func (g *gatedTransport) Accept(to int, b paxos.Ballot, slot int, v paxos.Value) (paxos.AcceptReply, error) {
	g.firstOnce.Do(func() { close(g.first) })
	<-g.gate
	return g.LocalTransport.Accept(to, b, slot, v)
}

// TestBatcherAmortizesPaxosRounds holds the first flush's Paxos round
// open, parks eight more clients behind it, then releases the gate:
// the stragglers must ride one group commit, giving 2 slots for 9
// requests.
func TestBatcherAmortizesPaxosRounds(t *testing.T) {
	accs := make([]*paxos.Acceptor, 3)
	ids := make([]int, 3)
	for i := range accs {
		accs[i] = paxos.NewAcceptor(i)
		ids[i] = i
	}
	gt := &gatedTransport{
		LocalTransport: paxos.NewLocalTransport(accs...),
		gate:           make(chan struct{}),
		first:          make(chan struct{}),
	}
	c := New()
	c.proposer = paxos.NewProposer(0, ids, gt)
	b := NewBatcher(c, 0)

	var wg sync.WaitGroup
	certify := func(key int64) {
		defer wg.Done()
		out, err := b.Certify(0, ws(key))
		if err != nil {
			t.Error(err)
			return
		}
		if !out.Committed {
			t.Errorf("disjoint writeset aborted: %+v", out)
		}
	}
	wg.Add(1)
	go certify(0)
	<-gt.first // flush 1 is inside its Paxos round

	const stragglers = 8
	for i := int64(1); i <= stragglers; i++ {
		wg.Add(1)
		go certify(i)
	}
	// Wait until every straggler is parked in the batcher's queue.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == stragglers {
			break
		}
		runtime.Gosched()
	}
	close(gt.gate)
	wg.Wait()

	if c.Version() != stragglers+1 {
		t.Fatalf("version = %d, want %d", c.Version(), stragglers+1)
	}
	if slots := c.ReplicationSlots(); slots != 2 {
		t.Fatalf("%d Paxos slots for %d requests, want 2 (1 + one group commit)", slots, stragglers+1)
	}
}

func TestBatcherMatchesCertifyOnConflicts(t *testing.T) {
	// Single-threaded through the batcher (batches of one): decisions
	// must be exactly Certify's.
	c := New()
	b := NewBatcher(c, 0)
	out, err := b.Certify(0, ws(1, 2))
	if err != nil || !out.Committed || out.Version != 1 {
		t.Fatalf("first commit: %+v %v", out, err)
	}
	out, err = b.Certify(0, ws(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed || out.ConflictWith != 1 {
		t.Fatalf("conflict through batcher: %+v", out)
	}
	if _, err := b.Certify(0, writeset.Writeset{}); err == nil {
		t.Fatal("empty writeset accepted through batcher")
	}
}

func TestRecoverRestoresLowWater(t *testing.T) {
	// A compacted log whose earliest retained record is version 8
	// (earlier slots hold no-op fillers) must restore the pruning
	// horizon: a promoted backup rejects pre-horizon snapshots exactly
	// as the failed leader did.
	log := map[int]paxos.Value{}
	slot := 0
	for ; slot < 3; slot++ {
		log[slot] = "noop"
	}
	for v := int64(8); v <= 10; v++ {
		val, err := encodeRecord(Record{Version: v, Writeset: ws(v)})
		if err != nil {
			t.Fatal(err)
		}
		log[slot] = val
		slot++
	}
	c, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version() != 10 {
		t.Fatalf("recovered version = %d", c.Version())
	}
	if _, err := c.Certify(3, ws(99)); err == nil {
		t.Fatal("recovered certifier accepted a pre-horizon snapshot")
	}
	out, err := c.Certify(7, ws(99))
	if err != nil || !out.Committed || out.Version != 11 {
		t.Fatalf("at-horizon certify: %+v %v", out, err)
	}
}

func TestRecoverBatchedLog(t *testing.T) {
	// Certify through group commit, then promote a backup: the
	// recovered certifier must see every record inside the batch
	// entries and make identical decisions.
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CertifyBatch([]Request{
		{Snapshot: 0, Writeset: ws(1)},
		{Snapshot: 0, Writeset: ws(2)},
		{Snapshot: 0, Writeset: ws(3)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Certify(c.Version(), ws(4)); err != nil {
		t.Fatal(err)
	}
	p1 := paxos.NewProposer(1, []int{0, 1, 2}, tr)
	log, err := p1.Recover(1, "noop") // slot 0 = batch, slot 1 = single
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Version() != 4 || recovered.LogLen() != 4 {
		t.Fatalf("recovered version=%d log=%d", recovered.Version(), recovered.LogLen())
	}
	conflict, with := recovered.Check(1, ws(2))
	if !conflict || with != 2 {
		t.Fatalf("recovered certifier lost batched history: %v %d", conflict, with)
	}
}

func TestIndexPrunedOnGC(t *testing.T) {
	c := New()
	for i := int64(1); i <= 10; i++ {
		if _, err := c.Certify(c.Version(), ws(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite key 2 at version 11: its index entry must survive a GC
	// that prunes version 2.
	if _, err := c.Certify(c.Version(), ws(2)); err != nil {
		t.Fatal(err)
	}
	if removed := c.GC(10); removed != 10 {
		t.Fatalf("GC removed %d", removed)
	}
	if got := c.IndexSize(); got != 1 {
		t.Fatalf("index holds %d keys after GC, want 1 (the re-written key)", got)
	}
	if conflict, with := c.Check(10, ws(2)); !conflict || with != 11 {
		t.Fatalf("surviving index entry lost: %v %d", conflict, with)
	}
}

func TestDecodeRecordsSingleAndBatch(t *testing.T) {
	single, err := encodeRecord(Record{Version: 3, Writeset: ws(1)})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(single)
	if err != nil || len(recs) != 1 || recs[0].Version != 3 {
		t.Fatalf("single decode: %+v %v", recs, err)
	}
	batch, err := encodeBatch([]Record{
		{Version: 4, Writeset: ws(1)},
		{Version: 5, Writeset: ws(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err = DecodeRecords(batch)
	if err != nil || len(recs) != 2 || recs[0].Version != 4 || recs[1].Version != 5 {
		t.Fatalf("batch decode: %+v %v", recs, err)
	}
	if recs, err := DecodeRecords("noop"); err != nil || len(recs) != 0 {
		t.Fatalf("noop decode: %+v %v", recs, err)
	}
	if _, err := DecodeRecords("[not json"); err == nil {
		t.Fatal("garbage batch decoded")
	}
}
