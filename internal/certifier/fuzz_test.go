package certifier

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

// fuzzSeedRecord builds one well-formed encoded record.
func fuzzSeedRecord(f *testing.F) paxos.Value {
	f.Helper()
	ws := writeset.New([]writeset.Entry{
		{Key: writeset.Key{Table: "accounts", Row: 7}, Value: "balance=12"},
		{Key: writeset.Key{Table: "audit", Row: -1}, Delete: true},
	})
	v, err := encodeRecord(Record{Version: 42, Writeset: ws})
	if err != nil {
		f.Fatal(err)
	}
	return v
}

// fuzzSeedBatch builds one well-formed encoded batch.
func fuzzSeedBatch(f *testing.F) paxos.Value {
	f.Helper()
	ws := func(row int64) writeset.Writeset {
		return writeset.New([]writeset.Entry{{Key: writeset.Key{Table: "t", Row: row}, Value: "x"}})
	}
	v, err := encodeBatch([]Record{
		{Version: 1, Writeset: ws(1)},
		{Version: 2, Writeset: ws(2)},
	})
	if err != nil {
		f.Fatal(err)
	}
	return v
}

// FuzzDecodeRecord hammers the Paxos value decoder with malformed,
// truncated and bit-flipped inputs: it must error cleanly, never panic
// and never over-allocate — these bytes arrive from the network on the
// election path.
func FuzzDecodeRecord(f *testing.F) {
	seed := fuzzSeedRecord(f)
	f.Add(string(seed))
	f.Add("")
	f.Add("noop")
	f.Add("{")
	f.Add(`{"Version":-1}`)
	f.Add(string(bytes.Repeat([]byte{0xff}, 64)))
	for _, i := range []int{1, len(seed) / 2, len(seed) - 2} {
		mut := []byte(seed)
		mut[i] ^= 0x40
		f.Add(string(mut))
	}
	f.Add(string(seed[:len(seed)-3])) // truncated

	f.Fuzz(func(t *testing.T, data string) {
		rec, err := DecodeRecord(paxos.Value(data)) // must not panic
		if err != nil {
			return
		}
		// A decoded record must round-trip: re-encoding and re-decoding
		// yields the same record, so nothing decoded depends on bytes
		// the encoder would not produce.
		enc, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(rec), normalize(rec2)) {
			t.Fatalf("round-trip diverged:\n%+v\nvs\n%+v", rec, rec2)
		}
	})
}

// FuzzDecodeRecords covers the batch-or-single sniffing path.
func FuzzDecodeRecords(f *testing.F) {
	single := fuzzSeedRecord(f)
	batch := fuzzSeedBatch(f)
	f.Add(string(single))
	f.Add(string(batch))
	f.Add("")
	f.Add("noop")
	f.Add("[")
	f.Add("[{]")
	f.Add("[]")
	f.Add(string(bytes.Repeat([]byte{'['}, 64)))
	for _, i := range []int{1, len(batch) / 2, len(batch) - 2} {
		mut := []byte(batch)
		mut[i] ^= 0x40
		f.Add(string(mut))
	}
	f.Add(string(batch[:len(batch)-3]))

	f.Fuzz(func(t *testing.T, data string) {
		recs, err := DecodeRecords(paxos.Value(data)) // must not panic
		if err != nil {
			return
		}
		// Accepted batches must be bounded by the input: each record
		// costs a handful of JSON bytes at minimum, so a tiny input
		// claiming a huge batch is impossible — a guard against decoded
		// size amplification.
		if len(recs) > len(data) {
			t.Fatalf("%d records decoded from %d bytes", len(recs), len(data))
		}
		for _, rec := range recs {
			if len(rec.Writeset.Entries) > len(data) {
				t.Fatalf("%d entries decoded from %d bytes", len(rec.Writeset.Entries), len(data))
			}
		}
	})
}

// normalize strips the writeset's derived key set, which encoding does
// not carry, so DeepEqual compares only what the codec owns.
func normalize(r Record) Record {
	r.Writeset = writeset.New(r.Writeset.Entries)
	return r
}
