// Package certifier implements the paper's certification service
// (§5.1): a lightweight stateful service that maintains committed
// writesets with their versions and decides update-transaction
// commits under generalized snapshot isolation.
//
// A request carries the transaction's writeset and the version of its
// snapshot. The certifier compares the writeset against the writesets
// of all transactions that committed after that version; any overlap
// is a system-wide write-write conflict and the transaction aborts,
// otherwise it commits and receives the next global version.
// Certification is deterministic, and an update transaction is
// durably committed once its writeset is persistent at the certifier —
// in this implementation, once a Paxos majority (leader + two backups,
// §6.1) has accepted the log entry.
//
// The conflict test is backed by an inverted index mapping each row
// key to the newest committed version that wrote it, maintained
// incrementally on commit and pruned on GC. Certification therefore
// costs O(|writeset|) regardless of how long the retained log is —
// the property §6.3 relies on when it argues the certifier is never
// the cluster bottleneck. CertifyBatch and Batcher additionally
// amortize one Paxos round over many concurrent requests, the way the
// paper's certifier logs batches of writesets.
package certifier

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

// NotLeaderError reports a certification request sent to a deposed
// leader: a newer epoch exists and this node must stop acknowledging
// commits. Callers redirect to the new leader (identified by the
// epoch's proposer id) and retry.
type NotLeaderError struct {
	// Leader is the paxos proposer id of the deposing epoch.
	Leader int
	// Epoch is the ballot that deposed this node.
	Epoch paxos.Ballot
}

func (e NotLeaderError) Error() string {
	return fmt.Sprintf("certifier: not leader (deposed by node %d, epoch %s)", e.Leader, e.Epoch)
}

// noopValue fills recovered log holes; DecodeRecord(s) skip it.
const noopValue paxos.Value = "noop"

// Record is one certified (committed) update transaction.
type Record struct {
	Version  int64
	Writeset writeset.Writeset
}

// Outcome reports a certification decision.
type Outcome struct {
	// Committed is true when no write-write conflict was found.
	Committed bool
	// Version is the global version assigned to the transaction
	// (valid only when Committed).
	Version int64
	// ConflictWith identifies the newest committed version that caused
	// an abort (valid only when !Committed).
	ConflictWith int64
}

// Request is one certification request, as submitted in a batch.
type Request struct {
	Snapshot int64
	Writeset writeset.Writeset
}

// Result pairs a certification outcome with a per-request error (an
// empty writeset or a snapshot below the pruning horizon).
type Result struct {
	Outcome Outcome
	Err     error
}

// Journal is the durability hook a write-ahead log implements: Append
// stages freshly certified records (called under the certification
// lock, so the journal receives them in version order — the property
// recovery's dense-prefix guarantee rests on) and returns a sequence
// token; Sync blocks until everything staged at or before the token is
// durable. Sync is called outside the lock, which is what lets one
// fsync group-commit every certification that raced into the same
// window.
type Journal interface {
	Append(recs []Record) (seq int64, err error)
	Sync(seq int64) error
}

// Certifier orders and certifies update transactions. It is safe for
// concurrent use; certification requests serialize, which is what
// makes the decision deterministic.
type Certifier struct {
	mu       sync.Mutex
	records  []Record // ascending versions, possibly pruned below lowWater
	index    map[writeset.Key]int64
	lowWater int64 // all versions <= lowWater have been pruned
	version  int64

	// Replication (optional): the certification log is proposed to a
	// Paxos group before a commit is acknowledged.
	proposer *paxos.Proposer

	// journal (optional): certified records are staged under mu and
	// synced before the commit is acknowledged. durable is the newest
	// version whose journal sync has completed: records above it exist
	// in memory but are withheld from Since, so a peer can never
	// replicate a commit that a power loss could still erase here —
	// the version would be reassigned on recovery and the peer, having
	// already applied the old record at that version, would silently
	// skip the new one forever.
	//
	// With a proposer attached the roles invert: the Paxos majority is
	// the durability authority (a commit is durable once accepted by a
	// quorum) and the journal is a best-effort local cache that speeds
	// up restart. A journal failure then detaches the journal (recorded
	// in journalErr) instead of failing the commit, and Since never
	// withholds — every applied record is already majority-durable.
	journal    Journal
	journalErr error
	durable    int64

	// stageObs (optional) receives the duration of each internal
	// certification sub-stage, for commit-path tracing.
	stageObs func(stage string, versions []int64, d time.Duration)

	// Two-phase commit state (twopc.go), allocated lazily: in-doubt
	// prepared fragments, their key locks, and recorded decisions.
	prepared  map[string]PreparedTxn
	prepIndex map[writeset.Key]string
	decisions map[string]TwoPCDecision

	commits int64
	aborts  int64
}

// New creates an unreplicated certifier, useful for tests and the
// single-master design (which needs none).
func New() *Certifier {
	return &Certifier{index: make(map[writeset.Key]int64)}
}

// SetJournal attaches the durability journal: from now on every
// certified record is staged in j (in version order, under the
// certification lock) and synced before Certify or CertifyBatch
// acknowledges the commit. Attach before serving traffic.
//
// On an unreplicated certifier the journal IS the durability
// authority: a journal failure refuses or withholds the commit. On a
// Paxos-replicated certifier the acceptor majority is the authority —
// a version the quorum accepted can never be reused — so the journal
// is a restart cache: a failure detaches it (see JournalError) and the
// commit is still acknowledged.
func (c *Certifier) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
	c.journalErr = nil
	c.durable = c.version // recovered history is durable by definition
}

// SetStageObserver attaches a callback invoked with the duration of
// each internal certification sub-stage — "paxos" (proposal rounds),
// "journal" (log append), "fsync" (group-commit sync wait) — and the
// certified versions the duration covers. Some invocations happen
// under the certification lock, so the callback must be fast and
// must never call back into the certifier. Attach before serving
// traffic.
func (c *Certifier) SetStageObserver(f func(stage string, versions []int64, d time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stageObs = f
}

// observeStage reports one sub-stage to the attached observer.
func (c *Certifier) observeStage(stage string, versions []int64, d time.Duration) {
	if c.stageObs != nil && len(versions) > 0 {
		c.stageObs(stage, versions, d)
	}
}

// JournalError returns the error that detached the journal of a
// replicated certifier, or nil while the journal is healthy.
func (c *Certifier) JournalError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalErr
}

// detachJournalLocked drops a failing journal on a replicated
// certifier: the Paxos log holds every record, so losing the local
// cache costs a slower restart, not correctness.
func (c *Certifier) detachJournalLocked(err error) {
	c.journal = nil
	c.journalErr = err
}

// markDurable publishes versions up to v as journal-durable. Journal
// appends happen in version order and an fsync covers every byte
// written before it, so a completed sync for v implies all versions
// at or below v are durable too.
func (c *Certifier) markDurable(v int64) {
	c.mu.Lock()
	if v > c.durable {
		c.durable = v
	}
	c.mu.Unlock()
}

// NewFromRecords rebuilds a certifier from an already-recovered record
// sequence — the WAL replay path, the journaled twin of Recover. base
// is the version the recovered history starts from (the compaction
// snapshot version); it becomes the pruning horizon, so the restarted
// certifier rejects snapshots predating its retained log exactly like
// one that GC'd to the same point.
func NewFromRecords(recs []Record, base int64) *Certifier {
	c := New()
	c.records = append(c.records, recs...)
	sort.Slice(c.records, func(i, j int) bool { return c.records[i].Version < c.records[j].Version })
	for _, rec := range c.records {
		for _, e := range rec.Writeset.Entries {
			c.index[e.Key] = rec.Version
		}
		if rec.Version > c.version {
			c.version = rec.Version
		}
		c.commits++
	}
	c.lowWater = base
	if c.version < base {
		c.version = base
	}
	return c
}

// LowWater returns the pruning horizon: all versions at or below it
// have been garbage-collected (or compacted away before recovery).
func (c *Certifier) LowWater() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lowWater
}

// NewReplicated creates a certifier whose log is replicated across
// nodes in-process Paxos acceptors (the paper uses a leader and two
// backups, so nodes is typically 3). It returns the certifier and the
// transport, which tests use to inject failures.
func NewReplicated(nodes int) (*Certifier, *paxos.LocalTransport, error) {
	if nodes < 1 {
		return nil, nil, fmt.Errorf("certifier: %d replication nodes", nodes)
	}
	accs := make([]*paxos.Acceptor, nodes)
	ids := make([]int, nodes)
	for i := range accs {
		accs[i] = paxos.NewAcceptor(i)
		ids[i] = i
	}
	tr := paxos.NewLocalTransport(accs...)
	c := New()
	c.proposer = paxos.NewProposer(0, ids, tr)
	return c, tr, nil
}

// NewReplicatedOver creates a certifier replicating through an
// externally supplied transport — the networked deployment, where
// acceptors live inside each replica's server. With fenced true the
// proposer deposes itself on preemption (returning NotLeaderError from
// Certify) instead of outbidding, which is what leader election
// requires: a deposed leader can never ack a commit the new leader did
// not learn.
func NewReplicatedOver(id int, peers []int, tr paxos.Transport, fenced bool) *Certifier {
	c := New()
	p := paxos.NewProposer(id, peers, tr)
	p.SetFenced(fenced)
	c.proposer = p
	return c
}

// Promote elects node id leader of the certification group and
// rebuilds the certifier from the recovered Paxos log — the backup
// promotion path after a leader failure. It returns the promoted
// certifier and its epoch (the winning ballot). The fenced proposer it
// installs guarantees the new leader is itself deposed cleanly when an
// even newer epoch appears.
func Promote(id int, peers []int, tr paxos.Transport) (*Certifier, paxos.Ballot, error) {
	p := paxos.NewProposer(id, peers, tr)
	p.SetFenced(true)
	epoch, log, err := p.Campaign(noopValue)
	if err != nil {
		return nil, paxos.Ballot{}, fmt.Errorf("certifier: promote: %w", err)
	}
	c, err := Recover(log)
	if err != nil {
		return nil, paxos.Ballot{}, err
	}
	c.RestoreTwoPCFromLog(log) // inherit in-doubt locks and decisions
	c.proposer = p
	return c, epoch, nil
}

// Campaign re-elects an existing replicated certifier's proposer —
// the warm-restart path, after the local state was rebuilt from a WAL
// and reconciled with the Paxos log. It returns the new epoch.
func (c *Certifier) Campaign() (paxos.Ballot, error) {
	c.mu.Lock()
	p := c.proposer
	c.mu.Unlock()
	if p == nil {
		return paxos.Ballot{}, fmt.Errorf("certifier: campaign on an unreplicated certifier")
	}
	epoch, log, err := p.Campaign(noopValue)
	if err != nil {
		return paxos.Ballot{}, fmt.Errorf("certifier: campaign: %w", err)
	}
	if err := c.ReconcileLog(log); err != nil {
		return paxos.Ballot{}, err
	}
	c.RestoreTwoPCFromLog(log)
	return epoch, nil
}

// ReconcileLog folds a recovered Paxos log into this certifier,
// applying every record above the locally known version. A restarted
// leader whose WAL lags the acceptor group (it crashed between a
// successful propose and the journal sync) catches up here before
// serving, so it can never reassign a version the quorum already
// decided.
func (c *Certifier) ReconcileLog(log map[int]paxos.Value) error {
	var recs []Record
	for _, v := range log {
		rs, err := DecodeRecords(v)
		if err != nil {
			return err
		}
		for _, rec := range rs {
			if rec.Version != 0 {
				recs = append(recs, rec)
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Version < recs[j].Version })
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range recs {
		if rec.Version <= c.version {
			continue
		}
		c.applyLocked(rec)
	}
	c.durable = c.version
	return nil
}

// Epoch returns the replicated certifier's current ballot (its epoch
// while it leads), or the zero ballot when unreplicated.
func (c *Certifier) Epoch() paxos.Ballot {
	c.mu.Lock()
	p := c.proposer
	c.mu.Unlock()
	if p == nil {
		return paxos.Ballot{}
	}
	return p.CurrentBallot()
}

// Deposed reports whether this certifier's fenced proposer has been
// preempted by a higher epoch (and by which ballot); always false on
// an unreplicated certifier. A deposed certifier answers every
// certification with NotLeaderError until re-elected via Campaign.
func (c *Certifier) Deposed() (paxos.Ballot, bool) {
	c.mu.Lock()
	p := c.proposer
	c.mu.Unlock()
	if p == nil {
		return paxos.Ballot{}, false
	}
	return p.Deposed()
}

// Version returns the latest committed global version.
func (c *Certifier) Version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Stats returns the number of committed and aborted certification
// requests.
func (c *Certifier) Stats() (commits, aborts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

// ReplicationSlots returns the number of Paxos log slots this
// certifier has decided, or 0 when unreplicated. Batched commits
// occupy one slot per batch, which is what makes group commit cheap.
func (c *Certifier) ReplicationSlots() int {
	if c.proposer == nil {
		return 0
	}
	return c.proposer.ChosenCount()
}

// Check performs the conflict test without committing: it reports
// whether ws conflicts with any transaction committed after snapshot.
// The replica proxy uses it for early certification of partial
// writesets (§5.1).
func (c *Certifier) Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conflictLocked(snapshot, ws)
}

// conflictLocked consults the inverted index: ws conflicts iff some
// key it writes was last written by a version newer than snapshot. It
// reports the newest such version, matching what a newest-first log
// scan would attribute the abort to.
func (c *Certifier) conflictLocked(snapshot int64, ws writeset.Writeset) (bool, int64) {
	newest := int64(0)
	for _, e := range ws.Entries {
		if v, ok := c.index[e.Key]; ok && v > snapshot && v > newest {
			newest = v
		}
	}
	return newest > 0, newest
}

// admitLocked validates a request against invariants that are errors
// rather than aborts.
func (c *Certifier) admitLocked(snapshot int64, ws writeset.Writeset) error {
	if ws.Empty() {
		return fmt.Errorf("certifier: empty writeset (read-only transactions commit locally)")
	}
	if snapshot < c.lowWater {
		return fmt.Errorf("certifier: snapshot %d below pruning horizon %d", snapshot, c.lowWater)
	}
	return nil
}

// applyLocked installs a freshly certified record.
func (c *Certifier) applyLocked(rec Record) {
	c.records = append(c.records, rec)
	for _, e := range rec.Writeset.Entries {
		c.index[e.Key] = rec.Version
	}
	c.version = rec.Version
	c.commits++
}

// Certify decides an update transaction: commit (assigning the next
// global version and persisting the writeset) or abort on conflict.
// A snapshot older than the pruning horizon is an error: the certifier
// can no longer certify against the full set of concurrent commits.
// With a journal attached, a commit is acknowledged only after its
// record is durable; journal staging happens under the lock (version
// order) while the sync happens outside it (group commit).
func (c *Certifier) Certify(snapshot int64, ws writeset.Writeset) (Outcome, error) {
	c.mu.Lock()
	if err := c.admitLocked(snapshot, ws); err != nil {
		c.mu.Unlock()
		return Outcome{}, err
	}
	if conflict, with := c.conflictLocked(snapshot, ws); conflict {
		c.aborts++
		c.mu.Unlock()
		return Outcome{Committed: false, ConflictWith: with}, nil
	}
	if c.prepConflictLocked("", ws) {
		// A key is locked by an in-doubt cross-shard fragment; nothing
		// may certify past its binding yes-vote (retry after it decides).
		c.aborts++
		c.mu.Unlock()
		return Outcome{Committed: false}, nil
	}
	rec := Record{Version: c.version + 1, Writeset: ws}
	replicated := c.proposer != nil
	if replicated {
		paxosStart := time.Now()
		// Persist through Paxos before acknowledging the commit. A
		// slot may turn out to hold a competing value — a deposed
		// leader's in-flight proposal that reached only a minority and
		// was resurrected by our prepare. That value is a chosen log
		// entry the moment it is adopted, so it must be folded into
		// this log (taking the version our record was about to use)
		// and the conflict check redone before the record retries at
		// the next slot; certifying around it would give two different
		// records the same version, which is divergence.
		for attempts := 0; ; attempts++ {
			if attempts == 1000 {
				c.mu.Unlock()
				return Outcome{}, fmt.Errorf("certifier: proposer starved")
			}
			val, err := encodeRecord(rec)
			if err != nil {
				c.mu.Unlock()
				return Outcome{}, err
			}
			_, chosen, err := c.proposer.ProposeNext(val)
			if err != nil {
				c.mu.Unlock()
				return Outcome{}, replicationError(err)
			}
			if chosen == val {
				break
			}
			if err := c.foldLocked(chosen); err != nil {
				c.mu.Unlock()
				return Outcome{}, err
			}
			if conflict, with := c.conflictLocked(snapshot, ws); conflict {
				c.aborts++
				c.mu.Unlock()
				return Outcome{Committed: false, ConflictWith: with}, nil
			}
			if c.prepConflictLocked("", ws) {
				c.aborts++
				c.mu.Unlock()
				return Outcome{Committed: false}, nil
			}
			rec.Version = c.version + 1
		}
		c.observeStage("paxos", []int64{rec.Version}, time.Since(paxosStart))
	}
	var seq int64
	var j Journal
	if c.journal != nil {
		var err error
		appendStart := time.Now()
		if seq, err = c.journal.Append([]Record{rec}); err != nil {
			if !replicated {
				// Nothing applied, nothing durable: a clean refusal.
				c.mu.Unlock()
				return Outcome{}, fmt.Errorf("certifier: journal: %w", err)
			}
			// The quorum already holds the record; drop the cache.
			c.detachJournalLocked(err)
		} else {
			j = c.journal
			c.observeStage("journal", []int64{rec.Version}, time.Since(appendStart))
		}
	}
	c.applyLocked(rec)
	c.mu.Unlock()
	if j != nil {
		syncStart := time.Now()
		if err := j.Sync(seq); err != nil {
			if !replicated {
				// The record is certified in memory but its durability
				// is unknown; withhold the acknowledgement. The durable
				// watermark keeps it invisible to Since, so no peer can
				// replicate it either.
				return Outcome{}, fmt.Errorf("certifier: journal sync (commit outcome unknown): %w", err)
			}
			c.mu.Lock()
			c.detachJournalLocked(err)
			c.mu.Unlock()
			return Outcome{Committed: true, Version: rec.Version}, nil
		}
		c.observeStage("fsync", []int64{rec.Version}, time.Since(syncStart))
		c.markDurable(rec.Version)
	}
	return Outcome{Committed: true, Version: rec.Version}, nil
}

// foldLocked installs the records of a competing value chosen at a
// Paxos slot this certifier proposed into — a deposed leader's stale
// minority accept resurrected by our own prepare (see Certify). They
// are committed log entries exactly as recovery finds them: journaled
// and applied ahead of anything certified afterwards. Noops and
// records already in the log fold to nothing; a version gap is
// refused, because applying around a hole would stall every replica's
// applier.
func (c *Certifier) foldLocked(v paxos.Value) error {
	recs, err := DecodeRecords(v)
	if err != nil {
		return fmt.Errorf("certifier: fold adopted value: %w", err)
	}
	var folded []Record
	for _, rec := range recs {
		next := c.version + int64(len(folded)) + 1
		if rec.Version == 0 || rec.Version < next {
			continue
		}
		if rec.Version != next {
			return fmt.Errorf("certifier: adopted value skips versions %d..%d", next, rec.Version-1)
		}
		folded = append(folded, rec)
	}
	if len(folded) == 0 {
		return nil
	}
	if c.journal != nil {
		if _, err := c.journal.Append(folded); err != nil {
			// The quorum already holds these records; drop the cache.
			c.detachJournalLocked(err)
		}
	}
	for _, rec := range folded {
		c.applyLocked(rec)
	}
	return nil
}

// replicationError converts a Propose failure into the caller-facing
// error: a deposal becomes the structured NotLeaderError clients use
// to find the new leader; anything else stays a replication failure.
func replicationError(err error) error {
	var dep paxos.DeposedError
	if errors.As(err, &dep) {
		return NotLeaderError{Leader: dep.By.Proposer, Epoch: dep.By}
	}
	return fmt.Errorf("certifier: replication failed: %w", err)
}

// CertifyBatch decides a batch of requests in order, as if each had
// been submitted to Certify back to back, but pays at most one Paxos
// round for the whole batch (group commit). Later requests in the
// batch see earlier ones as committed, so intra-batch conflicts abort
// exactly as they would have sequentially. Per-request validation
// failures are reported in the matching Result; a replication failure
// fails the whole batch with no state change, so no caller observes a
// commit that was never made durable.
func (c *Certifier) CertifyBatch(reqs []Request) ([]Result, error) {
	c.mu.Lock()
	replicated := c.proposer != nil
	var results []Result
	var staged []Record
	var aborts int64
	var paxosTime time.Duration
	for attempts := 0; ; attempts++ {
		if attempts == 1000 {
			c.mu.Unlock()
			return nil, fmt.Errorf("certifier: proposer starved")
		}
		results = make([]Result, len(reqs))
		staged = staged[:0]
		overlay := make(map[writeset.Key]int64)
		version := c.version
		aborts = 0
		for i, req := range reqs {
			if err := c.admitLocked(req.Snapshot, req.Writeset); err != nil {
				results[i].Err = err
				continue
			}
			// Conflict test against the committed index plus this
			// batch's tentative commits.
			newest := int64(0)
			for _, e := range req.Writeset.Entries {
				if v, ok := overlay[e.Key]; ok && v > req.Snapshot && v > newest {
					newest = v
				}
			}
			if conflict, with := c.conflictLocked(req.Snapshot, req.Writeset); conflict && with > newest {
				newest = with
			}
			if newest > 0 {
				aborts++
				results[i].Outcome = Outcome{Committed: false, ConflictWith: newest}
				continue
			}
			if c.prepConflictLocked("", req.Writeset) {
				// Locked by an in-doubt cross-shard fragment (see Certify).
				aborts++
				results[i].Outcome = Outcome{Committed: false}
				continue
			}
			version++
			rec := Record{Version: version, Writeset: req.Writeset}
			staged = append(staged, rec)
			for _, e := range req.Writeset.Entries {
				overlay[e.Key] = version
			}
			results[i].Outcome = Outcome{Committed: true, Version: version}
		}
		if len(staged) == 0 || !replicated {
			break
		}
		val, err := encodeBatch(staged)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		proposeStart := time.Now()
		_, chosen, err := c.proposer.ProposeNext(val)
		paxosTime += time.Since(proposeStart)
		if err != nil {
			c.mu.Unlock()
			return nil, replicationError(err)
		}
		if chosen == val {
			break
		}
		// A competing value was chosen at our slot (see Certify): fold
		// it in and re-stage the whole batch against the folded state —
		// every version shifts, new conflicts may appear, and nothing
		// has been acknowledged yet, so a full redo is safe.
		if err := c.foldLocked(chosen); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}
	if paxosTime > 0 {
		c.observeStageBatch("paxos", staged, paxosTime)
	}
	var seq int64
	var j Journal
	if len(staged) > 0 && c.journal != nil {
		var err error
		appendStart := time.Now()
		if seq, err = c.journal.Append(staged); err != nil {
			if !replicated {
				// Nothing applied: the whole batch fails with no state
				// change, exactly like a replication failure.
				c.mu.Unlock()
				return nil, fmt.Errorf("certifier: journal: %w", err)
			}
			c.detachJournalLocked(err)
		} else {
			j = c.journal
			c.observeStageBatch("journal", staged, time.Since(appendStart))
		}
	}
	for _, rec := range staged {
		c.applyLocked(rec)
	}
	c.aborts += aborts
	c.mu.Unlock()
	if j != nil {
		syncStart := time.Now()
		if err := j.Sync(seq); err != nil {
			if !replicated {
				return nil, fmt.Errorf("certifier: journal sync (batch outcome unknown): %w", err)
			}
			c.mu.Lock()
			c.detachJournalLocked(err)
			c.mu.Unlock()
			return results, nil
		}
		c.observeStageBatch("fsync", staged, time.Since(syncStart))
		c.markDurable(staged[len(staged)-1].Version)
	}
	return results, nil
}

// observeStageBatch reports one sub-stage covering a staged batch,
// allocating the version list only when an observer is attached.
func (c *Certifier) observeStageBatch(stage string, recs []Record, d time.Duration) {
	if c.stageObs == nil || len(recs) == 0 {
		return
	}
	vs := make([]int64, len(recs))
	for i, r := range recs {
		vs[i] = r.Version
	}
	c.stageObs(stage, vs, d)
}

// Since returns the committed records with versions strictly greater
// than v, in version order — the update-propagation feed. Records are
// sorted by version, so the suffix is located by binary search. With
// a journal attached to an unreplicated certifier, records whose sync
// has not completed are withheld: propagation must never outrun
// durability. A replicated certifier never withholds — every applied
// record already survived a Paxos quorum.
func (c *Certifier) Since(v int64) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := c.records
	if c.journal != nil && c.proposer == nil {
		end := sort.Search(len(recs), func(i int) bool { return recs[i].Version > c.durable })
		recs = recs[:end]
	}
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Version > v })
	if i == len(recs) {
		return nil
	}
	out := make([]Record, len(recs)-i)
	copy(out, recs[i:])
	return out
}

// GC prunes records with versions at or below upTo. Callers must
// guarantee every replica has applied those versions and no active
// snapshot predates them.
func (c *Certifier) GC(upTo int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if upTo <= c.lowWater {
		return 0
	}
	cut := sort.Search(len(c.records), func(i int) bool { return c.records[i].Version > upTo })
	for _, r := range c.records[:cut] {
		// Drop index entries whose newest writer is itself pruned; a
		// newer record may have overwritten the key, in which case the
		// index entry is still live.
		for _, e := range r.Writeset.Entries {
			if v, ok := c.index[e.Key]; ok && v <= upTo {
				delete(c.index, e.Key)
			}
		}
	}
	c.records = append(c.records[:0:0], c.records[cut:]...)
	c.lowWater = upTo
	return cut
}

// LogLen returns the number of retained records (after GC).
func (c *Certifier) LogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// IndexSize returns the number of keys in the inverted index (for
// tests and capacity monitoring).
func (c *Certifier) IndexSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// encodeRecord serializes a record for the Paxos log.
func encodeRecord(r Record) (paxos.Value, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("certifier: encode: %w", err)
	}
	return paxos.Value(b), nil
}

// encodeBatch serializes a group-committed batch as a JSON array, one
// Paxos log entry for the whole batch.
func encodeBatch(recs []Record) (paxos.Value, error) {
	b, err := json.Marshal(recs)
	if err != nil {
		return "", fmt.Errorf("certifier: encode batch: %w", err)
	}
	return paxos.Value(b), nil
}

// maxEncodedRecord bounds one Paxos log entry's encoding. Values
// arrive over the network on the election path, so the decoders treat
// anything larger as corruption instead of handing it to the JSON
// parser.
const maxEncodedRecord = 64 << 20

// DecodeRecord parses a Paxos log entry back into a Record. No-op
// recovery fillers decode to an empty record with Version 0.
func DecodeRecord(v paxos.Value) (Record, error) {
	if v == "" || v == noopValue {
		return Record{}, nil
	}
	if len(v) > maxEncodedRecord {
		return Record{}, fmt.Errorf("certifier: decode: %d-byte value exceeds %d", len(v), maxEncodedRecord)
	}
	var r Record
	if err := json.Unmarshal([]byte(v), &r); err != nil {
		return Record{}, fmt.Errorf("certifier: decode: %w", err)
	}
	return r, nil
}

// DecodeRecords parses a Paxos log entry that may hold either a single
// record or a group-committed batch. No-op fillers decode to an empty
// slice.
func DecodeRecords(v paxos.Value) ([]Record, error) {
	if v == "" || v == noopValue {
		return nil, nil
	}
	if len(v) > maxEncodedRecord {
		return nil, fmt.Errorf("certifier: decode: %d-byte value exceeds %d", len(v), maxEncodedRecord)
	}
	if len(v) > 0 && v[0] == '[' {
		var recs []Record
		if err := json.Unmarshal([]byte(v), &recs); err != nil {
			return nil, fmt.Errorf("certifier: decode batch: %w", err)
		}
		return recs, nil
	}
	r, err := DecodeRecord(v)
	if err != nil {
		return nil, err
	}
	return []Record{r}, nil
}

// Recover rebuilds a certifier's state from a recovered Paxos log, the
// backup-promotion path after a leader failure. Entries must be the
// chosen values by slot; no-ops are skipped, and a slot may hold a
// group-committed batch. The pruning horizon is restored from the
// lowest recovered version: a log whose early slots were compacted to
// no-ops recovers lowWater = lowest-1, so the promoted backup rejects
// snapshots predating its retained history the way the failed leader
// did. (Today nothing compacts the Paxos log, so a full log recovers
// lowWater 0 — correct, since the full history is present.)
func Recover(log map[int]paxos.Value) (*Certifier, error) {
	c := New()
	lowest := int64(0)
	for slot := 0; slot < len(log); slot++ {
		v, ok := log[slot]
		if !ok {
			return nil, fmt.Errorf("certifier: recovered log has a hole at slot %d", slot)
		}
		recs, err := DecodeRecords(v)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if rec.Version == 0 {
				continue // no-op filler
			}
			c.records = append(c.records, rec)
			if lowest == 0 || rec.Version < lowest {
				lowest = rec.Version
			}
		}
	}
	// Slots are decided in certification order, but sort defensively:
	// the index and Since both rely on ascending versions.
	sort.Slice(c.records, func(i, j int) bool { return c.records[i].Version < c.records[j].Version })
	for _, rec := range c.records {
		for _, e := range rec.Writeset.Entries {
			c.index[e.Key] = rec.Version
		}
		if rec.Version > c.version {
			c.version = rec.Version
		}
		c.commits++
	}
	if lowest > 0 {
		c.lowWater = lowest - 1
	}
	return c, nil
}
