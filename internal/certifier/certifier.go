// Package certifier implements the paper's certification service
// (§5.1): a lightweight stateful service that maintains committed
// writesets with their versions and decides update-transaction
// commits under generalized snapshot isolation.
//
// A request carries the transaction's writeset and the version of its
// snapshot. The certifier compares the writeset against the writesets
// of all transactions that committed after that version; any overlap
// is a system-wide write-write conflict and the transaction aborts,
// otherwise it commits and receives the next global version.
// Certification is deterministic, and an update transaction is
// durably committed once its writeset is persistent at the certifier —
// in this implementation, once a Paxos majority (leader + two backups,
// §6.1) has accepted the log entry.
package certifier

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

// Record is one certified (committed) update transaction.
type Record struct {
	Version  int64
	Writeset writeset.Writeset
}

// Outcome reports a certification decision.
type Outcome struct {
	// Committed is true when no write-write conflict was found.
	Committed bool
	// Version is the global version assigned to the transaction
	// (valid only when Committed).
	Version int64
	// ConflictWith identifies the committed version that caused an
	// abort (valid only when !Committed).
	ConflictWith int64
}

// Certifier orders and certifies update transactions. It is safe for
// concurrent use; certification requests serialize, which is what
// makes the decision deterministic.
type Certifier struct {
	mu       sync.Mutex
	records  []Record // ascending versions, possibly pruned below lowWater
	lowWater int64    // all versions <= lowWater have been pruned
	version  int64

	// Replication (optional): the certification log is proposed to a
	// Paxos group before a commit is acknowledged.
	proposer *paxos.Proposer

	commits int64
	aborts  int64
}

// New creates an unreplicated certifier, useful for tests and the
// single-master design (which needs none).
func New() *Certifier {
	return &Certifier{}
}

// NewReplicated creates a certifier whose log is replicated across
// nodes in-process Paxos acceptors (the paper uses a leader and two
// backups, so nodes is typically 3). It returns the certifier and the
// transport, which tests use to inject failures.
func NewReplicated(nodes int) (*Certifier, *paxos.LocalTransport, error) {
	if nodes < 1 {
		return nil, nil, fmt.Errorf("certifier: %d replication nodes", nodes)
	}
	accs := make([]*paxos.Acceptor, nodes)
	ids := make([]int, nodes)
	for i := range accs {
		accs[i] = paxos.NewAcceptor(i)
		ids[i] = i
	}
	tr := paxos.NewLocalTransport(accs...)
	c := &Certifier{proposer: paxos.NewProposer(0, ids, tr)}
	return c, tr, nil
}

// Version returns the latest committed global version.
func (c *Certifier) Version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Stats returns the number of committed and aborted certification
// requests.
func (c *Certifier) Stats() (commits, aborts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

// Check performs the conflict test without committing: it reports
// whether ws conflicts with any transaction committed after snapshot.
// The replica proxy uses it for early certification of partial
// writesets (§5.1).
func (c *Certifier) Check(snapshot int64, ws writeset.Writeset) (conflict bool, with int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conflictLocked(snapshot, ws)
}

// conflictLocked scans records newer than snapshot for overlap.
func (c *Certifier) conflictLocked(snapshot int64, ws writeset.Writeset) (bool, int64) {
	if ws.Empty() {
		return false, 0
	}
	// Records are sorted by version; binary search would work, but the
	// suffix beyond any realistic snapshot is short because GC trims
	// the log.
	for i := len(c.records) - 1; i >= 0; i-- {
		r := c.records[i]
		if r.Version <= snapshot {
			break
		}
		if r.Writeset.Conflicts(ws) {
			return true, r.Version
		}
	}
	return false, 0
}

// Certify decides an update transaction: commit (assigning the next
// global version and persisting the writeset) or abort on conflict.
// A snapshot older than the pruning horizon is an error: the certifier
// can no longer certify against the full set of concurrent commits.
func (c *Certifier) Certify(snapshot int64, ws writeset.Writeset) (Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws.Empty() {
		return Outcome{}, fmt.Errorf("certifier: empty writeset (read-only transactions commit locally)")
	}
	if snapshot < c.lowWater {
		return Outcome{}, fmt.Errorf("certifier: snapshot %d below pruning horizon %d", snapshot, c.lowWater)
	}
	if conflict, with := c.conflictLocked(snapshot, ws); conflict {
		c.aborts++
		return Outcome{Committed: false, ConflictWith: with}, nil
	}
	rec := Record{Version: c.version + 1, Writeset: ws}
	if c.proposer != nil {
		// Persist through Paxos before acknowledging the commit.
		val, err := encodeRecord(rec)
		if err != nil {
			return Outcome{}, err
		}
		if _, err := c.proposer.Propose(val); err != nil {
			return Outcome{}, fmt.Errorf("certifier: replication failed: %w", err)
		}
	}
	c.records = append(c.records, rec)
	c.version = rec.Version
	c.commits++
	return Outcome{Committed: true, Version: rec.Version}, nil
}

// Since returns the committed records with versions strictly greater
// than v, in version order — the update-propagation feed.
func (c *Certifier) Since(v int64) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, 0, 8)
	for _, r := range c.records {
		if r.Version > v {
			out = append(out, r)
		}
	}
	return out
}

// GC prunes records with versions at or below upTo. Callers must
// guarantee every replica has applied those versions and no active
// snapshot predates them.
func (c *Certifier) GC(upTo int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if upTo <= c.lowWater {
		return 0
	}
	kept := c.records[:0]
	removed := 0
	for _, r := range c.records {
		if r.Version <= upTo {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	c.records = kept
	c.lowWater = upTo
	return removed
}

// LogLen returns the number of retained records (after GC).
func (c *Certifier) LogLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// encodeRecord serializes a record for the Paxos log.
func encodeRecord(r Record) (paxos.Value, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("certifier: encode: %w", err)
	}
	return paxos.Value(b), nil
}

// DecodeRecord parses a Paxos log entry back into a Record. No-op
// recovery fillers decode to an empty record with Version 0.
func DecodeRecord(v paxos.Value) (Record, error) {
	if v == "" || v == "noop" {
		return Record{}, nil
	}
	var r Record
	if err := json.Unmarshal([]byte(v), &r); err != nil {
		return Record{}, fmt.Errorf("certifier: decode: %w", err)
	}
	return r, nil
}

// Recover rebuilds a certifier's state from a recovered Paxos log, the
// backup-promotion path after a leader failure. Entries must be the
// chosen values by slot; no-ops are skipped.
func Recover(log map[int]paxos.Value) (*Certifier, error) {
	c := New()
	for slot := 0; slot < len(log); slot++ {
		v, ok := log[slot]
		if !ok {
			return nil, fmt.Errorf("certifier: recovered log has a hole at slot %d", slot)
		}
		rec, err := DecodeRecord(v)
		if err != nil {
			return nil, err
		}
		if rec.Version == 0 {
			continue // no-op filler
		}
		c.records = append(c.records, rec)
		if rec.Version > c.version {
			c.version = rec.Version
		}
		c.commits++
	}
	return c, nil
}
