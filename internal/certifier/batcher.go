package certifier

import (
	"sync"
	"time"

	"repro/internal/writeset"
)

// Batcher is an opt-in group-commit front end for a Certifier: it
// collects certification requests that arrive while a flush is in
// progress and submits them together through CertifyBatch, so one
// Paxos round (and one lock acquisition) is amortized over every
// request in the batch. This mirrors the paper's certifier, which
// logs writesets in batches to keep the certification service off the
// critical path (§6.3).
//
// The combining protocol is leaderless: the first goroutine to find
// no flush in progress becomes the flusher; everyone else parks on a
// channel and is handed its result. The flusher's own request always
// rides the first batch it flushes, after which any backlog that
// accumulated mid-flush is handed to a background drainer — so no
// client's commit latency is hostage to other clients' sustained
// load. Under low concurrency a request flushes immediately in a
// batch of one, adding no latency.
//
// The group-commit window is adaptive: when no flush (no Paxos round)
// is in flight a request flushes immediately, but the background
// drainer waits an accumulation window before cutting each backlog
// batch. The window widens under queue pressure (full batches, or a
// queue that outpaces flushing) so more requests amortize each Paxos
// round, and shrinks back toward zero when batches run small — the
// fixed-window latency tax at low load disappears.
type Batcher struct {
	cert      *Certifier
	maxBatch  int
	maxWindow time.Duration

	mu        sync.Mutex
	pending   []*pendingCert
	flushing  bool
	window    time.Duration // current adaptive accumulation window
	batches   int64
	certified int64
}

// pendingCert is one parked request.
type pendingCert struct {
	req  Request
	res  Result
	done chan struct{}
}

// DefaultMaxBatch bounds a single group commit; past a few hundred
// requests the Paxos round is fully amortized and larger batches only
// add commit latency.
const DefaultMaxBatch = 256

// Adaptive window bounds: the accumulation window starts at zero
// (immediate flush), first widens to minWindow, doubles up to
// DefaultMaxWindow under sustained pressure, and collapses back to
// zero when batches run small.
const (
	minWindow        = 100 * time.Microsecond
	DefaultMaxWindow = 2 * time.Millisecond
)

// NewBatcher wraps cert with a group-commit front end. maxBatch <= 0
// selects DefaultMaxBatch. The adaptive accumulation window is capped
// at DefaultMaxWindow; SetMaxWindow overrides.
func NewBatcher(cert *Certifier, maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Batcher{cert: cert, maxBatch: maxBatch, maxWindow: DefaultMaxWindow}
}

// SetMaxWindow caps the adaptive accumulation window; 0 disables
// accumulation entirely (every backlog batch cuts immediately).
// Install before the batcher takes traffic.
func (b *Batcher) SetMaxWindow(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maxWindow = d
	if b.window > d {
		b.window = d
	}
}

// BatchStats reports cumulative flushed batches, the requests they
// carried, and the current adaptive window.
func (b *Batcher) BatchStats() (batches, requests int64, window time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.certified, b.window
}

// Certifier returns the underlying certification service.
func (b *Batcher) Certifier() *Certifier { return b.cert }

// Certify submits one certification request through the group-commit
// path. It blocks until the request's batch is durable and returns
// the same outcome sequential certification would have produced.
func (b *Batcher) Certify(snapshot int64, ws writeset.Writeset) (Outcome, error) {
	p := &pendingCert{
		req:  Request{Snapshot: snapshot, Writeset: ws},
		done: make(chan struct{}),
	}
	b.mu.Lock()
	becomeFlusher := !b.flushing
	if becomeFlusher {
		b.flushing = true
	}
	b.pending = append(b.pending, p)
	b.mu.Unlock()

	if becomeFlusher {
		// The queue was empty when this request enqueued (a retiring
		// flusher drains it before releasing the role), so our request
		// rides the first batch.
		b.flushOnce()
		// Requests that arrived mid-flush are someone else's latency:
		// hand them to a background drainer instead of flushing
		// forever on this caller's commit path.
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.flushing = false
			b.mu.Unlock()
		} else {
			b.mu.Unlock()
			go b.drain()
		}
	}
	<-p.done
	return p.res.Outcome, p.res.Err
}

// drain flushes the backlog a retiring flusher left behind. Before
// cutting each partial batch it waits the current adaptive window so
// concurrent arrivals coalesce into the same Paxos round; a full
// queue cuts immediately (waiting could not grow the batch further).
func (b *Batcher) drain() {
	for {
		b.mu.Lock()
		w := b.window
		n := len(b.pending)
		b.mu.Unlock()
		if w > 0 && n > 0 && n < b.maxBatch {
			time.Sleep(w)
		}
		if !b.flushOnce() {
			return
		}
	}
}

// flushOnce takes one batch off the queue and certifies it, waking
// the batch's waiters. It returns false — atomically releasing the
// flusher role — when the queue is empty.
func (b *Batcher) flushOnce() bool {
	b.mu.Lock()
	n := len(b.pending)
	if n == 0 {
		b.flushing = false
		b.mu.Unlock()
		return false
	}
	if n > b.maxBatch {
		n = b.maxBatch
	}
	batch := b.pending[:n:n]
	if n == len(b.pending) {
		b.pending = nil // release the backing array
	} else {
		b.pending = b.pending[n:]
	}
	// Adapt the accumulation window the drainer waits before cutting
	// the next batch: widen under queue pressure (a full batch, or a
	// queue growing faster than it drains), shrink toward immediate
	// flushes when batches run small.
	switch {
	case b.maxWindow <= 0:
	case n >= b.maxBatch || len(b.pending) > n:
		switch {
		case b.window == 0:
			b.window = minWindow
		case b.window < b.maxWindow:
			b.window *= 2
			if b.window > b.maxWindow {
				b.window = b.maxWindow
			}
		}
	case n <= 1:
		b.window = 0
	case n < b.maxBatch/4:
		b.window /= 2
		if b.window < minWindow {
			b.window = 0
		}
	}
	b.batches++
	b.certified += int64(n)
	b.mu.Unlock()

	reqs := make([]Request, n)
	for i, q := range batch {
		reqs[i] = q.req
	}
	results, err := b.cert.CertifyBatch(reqs)
	for i, q := range batch {
		if err != nil {
			q.res.Err = err
		} else {
			q.res = results[i]
		}
		close(q.done)
	}
	return true
}
