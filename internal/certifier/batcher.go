package certifier

import (
	"sync"

	"repro/internal/writeset"
)

// Batcher is an opt-in group-commit front end for a Certifier: it
// collects certification requests that arrive while a flush is in
// progress and submits them together through CertifyBatch, so one
// Paxos round (and one lock acquisition) is amortized over every
// request in the batch. This mirrors the paper's certifier, which
// logs writesets in batches to keep the certification service off the
// critical path (§6.3).
//
// The combining protocol is leaderless: the first goroutine to find
// no flush in progress becomes the flusher; everyone else parks on a
// channel and is handed its result. The flusher's own request always
// rides the first batch it flushes, after which any backlog that
// accumulated mid-flush is handed to a background drainer — so no
// client's commit latency is hostage to other clients' sustained
// load. Under low concurrency a request flushes immediately in a
// batch of one, adding no latency.
type Batcher struct {
	cert     *Certifier
	maxBatch int

	mu       sync.Mutex
	pending  []*pendingCert
	flushing bool
}

// pendingCert is one parked request.
type pendingCert struct {
	req  Request
	res  Result
	done chan struct{}
}

// DefaultMaxBatch bounds a single group commit; past a few hundred
// requests the Paxos round is fully amortized and larger batches only
// add commit latency.
const DefaultMaxBatch = 256

// NewBatcher wraps cert with a group-commit front end. maxBatch <= 0
// selects DefaultMaxBatch.
func NewBatcher(cert *Certifier, maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Batcher{cert: cert, maxBatch: maxBatch}
}

// Certifier returns the underlying certification service.
func (b *Batcher) Certifier() *Certifier { return b.cert }

// Certify submits one certification request through the group-commit
// path. It blocks until the request's batch is durable and returns
// the same outcome sequential certification would have produced.
func (b *Batcher) Certify(snapshot int64, ws writeset.Writeset) (Outcome, error) {
	p := &pendingCert{
		req:  Request{Snapshot: snapshot, Writeset: ws},
		done: make(chan struct{}),
	}
	b.mu.Lock()
	becomeFlusher := !b.flushing
	if becomeFlusher {
		b.flushing = true
	}
	b.pending = append(b.pending, p)
	b.mu.Unlock()

	if becomeFlusher {
		// The queue was empty when this request enqueued (a retiring
		// flusher drains it before releasing the role), so our request
		// rides the first batch.
		b.flushOnce()
		// Requests that arrived mid-flush are someone else's latency:
		// hand them to a background drainer instead of flushing
		// forever on this caller's commit path.
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.flushing = false
			b.mu.Unlock()
		} else {
			b.mu.Unlock()
			go func() {
				for b.flushOnce() {
				}
			}()
		}
	}
	<-p.done
	return p.res.Outcome, p.res.Err
}

// flushOnce takes one batch off the queue and certifies it, waking
// the batch's waiters. It returns false — atomically releasing the
// flusher role — when the queue is empty.
func (b *Batcher) flushOnce() bool {
	b.mu.Lock()
	n := len(b.pending)
	if n == 0 {
		b.flushing = false
		b.mu.Unlock()
		return false
	}
	if n > b.maxBatch {
		n = b.maxBatch
	}
	batch := b.pending[:n:n]
	if n == len(b.pending) {
		b.pending = nil // release the backing array
	} else {
		b.pending = b.pending[n:]
	}
	b.mu.Unlock()

	reqs := make([]Request, n)
	for i, q := range batch {
		reqs[i] = q.req
	}
	results, err := b.cert.CertifyBatch(reqs)
	for i, q := range batch {
		if err != nil {
			q.res.Err = err
		} else {
			q.res = results[i]
		}
		close(q.done)
	}
	return true
}
