package certifier

import (
	"sync"
	"testing"

	"repro/internal/paxos"
	"repro/internal/writeset"
)

func ws(keys ...int64) writeset.Writeset {
	var w writeset.Writeset
	for _, k := range keys {
		w.Entries = append(w.Entries, writeset.Entry{
			Key: writeset.Key{Table: "t", Row: k}, Value: "v",
		})
	}
	return w
}

func TestCommitAssignsIncreasingVersions(t *testing.T) {
	c := New()
	for i := int64(1); i <= 5; i++ {
		out, err := c.Certify(c.Version(), ws(i))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Committed || out.Version != i {
			t.Fatalf("commit %d: %+v", i, out)
		}
	}
	if c.Version() != 5 {
		t.Fatalf("version = %d", c.Version())
	}
}

func TestConflictDetection(t *testing.T) {
	c := New()
	out, _ := c.Certify(0, ws(1, 2))
	if !out.Committed {
		t.Fatal("first commit failed")
	}
	// A transaction with snapshot 0 that writes row 2 conflicts.
	out, err := c.Certify(0, ws(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed {
		t.Fatal("conflicting writeset committed")
	}
	if out.ConflictWith != 1 {
		t.Fatalf("conflict attributed to version %d", out.ConflictWith)
	}
	// The same writeset with a current snapshot commits.
	out, _ = c.Certify(c.Version(), ws(2, 3))
	if !out.Committed {
		t.Fatal("non-concurrent writeset aborted")
	}
}

func TestDisjointWritesetsCommit(t *testing.T) {
	c := New()
	c.Certify(0, ws(1))
	out, _ := c.Certify(0, ws(2))
	if !out.Committed {
		t.Fatal("disjoint concurrent writeset aborted")
	}
}

func TestEmptyWritesetRejected(t *testing.T) {
	c := New()
	if _, err := c.Certify(0, writeset.Writeset{}); err == nil {
		t.Fatal("empty writeset accepted")
	}
}

func TestCheckDoesNotCommit(t *testing.T) {
	c := New()
	c.Certify(0, ws(1))
	conflict, with := c.Check(0, ws(1))
	if !conflict || with != 1 {
		t.Fatalf("Check = %v %d", conflict, with)
	}
	if conflict, _ := c.Check(0, ws(9)); conflict {
		t.Fatal("Check found phantom conflict")
	}
	if c.Version() != 1 {
		t.Fatal("Check changed state")
	}
}

func TestSinceReturnsPropagationFeed(t *testing.T) {
	c := New()
	for i := int64(1); i <= 4; i++ {
		c.Certify(c.Version(), ws(i))
	}
	recs := c.Since(2)
	if len(recs) != 2 || recs[0].Version != 3 || recs[1].Version != 4 {
		t.Fatalf("Since(2) = %+v", recs)
	}
	if len(c.Since(4)) != 0 {
		t.Fatal("Since(latest) not empty")
	}
}

func TestGCAndPruningHorizon(t *testing.T) {
	c := New()
	for i := int64(1); i <= 10; i++ {
		c.Certify(c.Version(), ws(i))
	}
	removed := c.GC(7)
	if removed != 7 || c.LogLen() != 3 {
		t.Fatalf("GC removed %d, log %d", removed, c.LogLen())
	}
	// Snapshots below the horizon can no longer be certified.
	if _, err := c.Certify(3, ws(99)); err == nil {
		t.Fatal("pre-horizon snapshot accepted")
	}
	// At or above the horizon is fine.
	if _, err := c.Certify(7, ws(99)); err != nil {
		t.Fatal(err)
	}
	// GC is monotone.
	if c.GC(5) != 0 {
		t.Fatal("GC went backwards")
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.Certify(0, ws(1))
	c.Certify(0, ws(1)) // conflict
	commits, aborts := c.Stats()
	if commits != 1 || aborts != 1 {
		t.Fatalf("stats = %d/%d", commits, aborts)
	}
}

func TestConcurrentCertification(t *testing.T) {
	// Many goroutines certify writesets over a small key space with
	// retry; the serialized certifier must keep versions dense and
	// never commit two concurrent conflicting writesets.
	c := New()
	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := map[int64]writeset.Writeset{}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64((w*perWorker + i) % 40)
				for {
					snap := c.Version()
					out, err := c.Certify(snap, ws(key))
					if err != nil {
						t.Error(err)
						return
					}
					if out.Committed {
						mu.Lock()
						committed[out.Version] = ws(key)
						mu.Unlock()
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if c.Version() != total {
		t.Fatalf("versions not dense: %d != %d", c.Version(), total)
	}
	for v := int64(1); v <= total; v++ {
		if _, ok := committed[v]; !ok {
			t.Fatalf("version %d missing", v)
		}
	}
}

func TestReplicatedCertifierCommits(t *testing.T) {
	c, _, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		out, err := c.Certify(c.Version(), ws(i))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Committed || out.Version != i {
			t.Fatalf("commit %d: %+v", i, out)
		}
	}
}

func TestReplicatedCertifierNeedsMajority(t *testing.T) {
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetDown(1, true)
	tr.SetDown(2, true)
	if _, err := c.Certify(0, ws(1)); err == nil {
		t.Fatal("commit acknowledged without a majority")
	}
	// Restore one backup: majority available again.
	tr.SetDown(1, false)
	out, err := c.Certify(0, ws(1))
	if err != nil || !out.Committed {
		t.Fatalf("post-restore commit: %+v %v", out, err)
	}
}

func TestReplicatedSurvivesBackupFailure(t *testing.T) {
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetDown(2, true) // one backup down, leader + one backup remain
	for i := int64(1); i <= 3; i++ {
		out, err := c.Certify(c.Version(), ws(i))
		if err != nil || !out.Committed {
			t.Fatalf("commit with one backup down: %+v %v", out, err)
		}
	}
}

func TestLeaderFailoverRecoversLog(t *testing.T) {
	// Certify through the leader, then promote a backup and rebuild
	// the certifier from the recovered Paxos log. The new certifier
	// must make identical decisions.
	c, tr, err := NewReplicated(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := c.Certify(c.Version(), ws(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Promote node 1; the old leader's proposer is gone.
	p1 := paxos.NewProposer(1, []int{0, 1, 2}, tr)
	log, err := p1.Recover(4, "noop") // slots 0..4 hold versions 1..5
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Recover(log)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Version() != 5 {
		t.Fatalf("recovered version = %d", recovered.Version())
	}
	// The recovered certifier sees the same conflicts.
	conflict, with := recovered.Check(0, ws(3))
	if !conflict || with != 3 {
		t.Fatalf("recovered certifier lost history: %v %d", conflict, with)
	}
	out, err := recovered.Certify(recovered.Version(), ws(99))
	if err != nil || !out.Committed || out.Version != 6 {
		t.Fatalf("recovered certifier cannot continue: %+v %v", out, err)
	}
}

func TestRecoverRejectsHoles(t *testing.T) {
	log := map[int]paxos.Value{0: "noop", 2: "noop"}
	if _, err := Recover(log); err == nil {
		t.Fatal("holey log accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rec := Record{Version: 7, Writeset: ws(1, 2, 3)}
	v, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(v)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 7 || back.Writeset.Len() != 3 {
		t.Fatalf("round trip = %+v", back)
	}
	if noop, err := DecodeRecord("noop"); err != nil || noop.Version != 0 {
		t.Fatalf("noop decode = %+v %v", noop, err)
	}
	if _, err := DecodeRecord("not json"); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestCertifyAfterManyGCCycles(t *testing.T) {
	c := New()
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			out, err := c.Certify(c.Version(), ws(int64(i)))
			if err != nil || !out.Committed {
				t.Fatalf("round %d commit %d: %+v %v", round, i, out, err)
			}
		}
		c.GC(c.Version() - 5)
	}
	if c.LogLen() != 5 {
		t.Fatalf("log length = %d", c.LogLen())
	}
	if c.Version() != 100 {
		t.Fatalf("version after GC cycles = %d", c.Version())
	}
}
