package sidb

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestScanVisibleRows(t *testing.T) {
	db := newDB(t, "item")
	if err := db.BulkLoad("item", 5, func(i int64) string { return "v" }); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	rows, err := tx.Scan("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("scan = %d rows", len(rows))
	}
	tx.Abort()
}

func TestScanRespectsSnapshot(t *testing.T) {
	db := newDB(t, "item")
	db.BulkLoad("item", 3, func(i int64) string { return "old" })
	reader := db.Begin()
	w := db.Begin()
	w.Write("item", 0, "new")
	w.Write("item", 9, "extra")
	mustCommit(t, w)
	rows, err := reader.Scan("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0] != "old" {
		t.Fatalf("snapshot scan leaked: %v", rows)
	}
	reader.Abort()
}

func TestScanIncludesOwnWrites(t *testing.T) {
	db := newDB(t, "item")
	db.BulkLoad("item", 2, func(i int64) string { return "base" })
	tx := db.Begin()
	tx.Write("item", 5, "mine")
	tx.Delete("item", 0)
	rows, err := tx.Scan("item")
	if err != nil {
		t.Fatal(err)
	}
	if rows[5] != "mine" {
		t.Fatalf("own write missing: %v", rows)
	}
	if _, ok := rows[0]; ok {
		t.Fatalf("own delete visible: %v", rows)
	}
	if len(rows) != 2 { // row 1 base + row 5 mine
		t.Fatalf("scan = %v", rows)
	}
	tx.Abort()
}

func TestScanKeysSorted(t *testing.T) {
	db := newDB(t, "item")
	db.BulkLoad("item", 4, func(i int64) string { return "v" })
	tx := db.Begin()
	keys, err := tx.ScanKeys("item")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	tx.Abort()
}

func TestScanErrors(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	if _, err := tx.Scan("missing"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
	tx.Abort()
	if _, err := tx.Scan("item"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("done txn: %v", err)
	}
}

func TestDumpMatchesScan(t *testing.T) {
	db := newDB(t, "item")
	db.BulkLoad("item", 10, func(i int64) string { return "v" })
	d, err := db.Dump("item")
	if err != nil || len(d) != 10 {
		t.Fatalf("dump: %v %v", len(d), err)
	}
}

func TestBulkLoadRequiresTable(t *testing.T) {
	db := New()
	if err := db.BulkLoad("nope", 1, func(int64) string { return "" }); !errors.Is(err, ErrNoTable) {
		t.Fatalf("bulk load into missing table: %v", err)
	}
}

func TestBulkLoadAdvancesVersionOnce(t *testing.T) {
	db := newDB(t, "item")
	v0 := db.Version()
	db.BulkLoad("item", 100, func(i int64) string { return "v" })
	if db.Version() != v0+1 {
		t.Fatalf("bulk load advanced version by %d", db.Version()-v0)
	}
}

func TestQuickScanMatchesPointReads(t *testing.T) {
	// Property: for random write/delete sequences, Scan agrees with
	// per-row Reads for every key it reports and omits exactly the
	// deleted/missing keys.
	f := func(ops []uint16) bool {
		db := New()
		if err := db.CreateTable("t"); err != nil {
			return false
		}
		tx := db.Begin()
		for _, op := range ops {
			row := int64(op % 32)
			if op%3 == 0 {
				tx.Delete("t", row)
			} else {
				tx.Write("t", row, "x")
			}
		}
		if _, _, err := tx.Commit(); err != nil {
			return false
		}
		check := db.Begin()
		defer check.Abort()
		scan, err := check.Scan("t")
		if err != nil {
			return false
		}
		for row := int64(0); row < 32; row++ {
			v, ok, err := check.Read("t", row)
			if err != nil {
				return false
			}
			sv, sok := scan[row]
			if ok != sok || (ok && v != sv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
