package sidb

import (
	"fmt"
	"sort"

	"repro/internal/writeset"
)

// Scan returns every row of the table visible to the transaction's
// snapshot (including the transaction's own writes), keyed by row id.
// The result is a private copy. Shards are visited one at a time
// under their shared locks; snapshot visibility makes the union
// consistent even though the locks are not held simultaneously.
func (tx *Txn) Scan(tableName string) (map[int64]string, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	if !tx.db.hasTable(tableName) {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	out := make(map[int64]string)
	for i := range tx.db.shards {
		s := &tx.db.shards[i]
		s.mu.RLock()
		if t, ok := s.tables[tableName]; ok {
			for key, r := range t.rows {
				if v, ok := r.visible(tx.snapshot); ok && !v.deleted {
					out[key] = v.value
				}
			}
		}
		s.mu.RUnlock()
	}

	// Overlay the transaction's own pending writes.
	for k, e := range tx.writes {
		if k.Table != tableName {
			continue
		}
		if e.Delete {
			delete(out, k.Row)
		} else {
			out[k.Row] = e.Value
		}
	}
	return out, nil
}

// ScanKeys returns the visible row ids of a table in ascending order.
func (tx *Txn) ScanKeys(tableName string) ([]int64, error) {
	rows, err := tx.Scan(tableName)
	if err != nil {
		return nil, err
	}
	keys := make([]int64, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// Dump returns a consistent snapshot of a table's live contents using
// a throwaway read-only transaction.
func (db *DB) Dump(tableName string) (map[int64]string, error) {
	tx := db.Begin()
	defer tx.Abort()
	return tx.Scan(tableName)
}

// BulkLoad fills rows [0, rows) of a table with value(row) in one
// internally versioned installation, bypassing concurrency control.
// It is the initial-load path replicas use before traffic starts.
func (db *DB) BulkLoad(tableName string, rows int, value func(int64) string) error {
	if !db.hasTable(tableName) {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	entries := make([]writeset.Entry, 0, rows)
	for i := int64(0); i < int64(rows); i++ {
		entries = append(entries, writeset.Entry{
			Key:   writeset.Key{Table: tableName, Row: i},
			Value: value(i),
		})
	}
	v := db.version + 1
	ws := writeset.New(entries)
	if err := db.journalInstall(ws, v); err != nil {
		return err
	}
	db.install(ws, v, false)
	db.advance(v, false)
	return nil
}
