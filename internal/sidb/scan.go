package sidb

import (
	"fmt"
	"sort"

	"repro/internal/writeset"
)

// Scan returns every row of the table visible to the transaction's
// snapshot (including the transaction's own writes), keyed by row id.
// The result is a private copy.
func (tx *Txn) Scan(tableName string) (map[int64]string, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	out := make(map[int64]string)
	tx.db.mu.Lock()
	t, exists := tx.db.tables[tableName]
	if !exists {
		tx.db.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	for key, r := range t.rows {
		if v, ok := r.visible(tx.snapshot); ok && !v.deleted {
			out[key] = v.value
		}
	}
	tx.db.mu.Unlock()

	// Overlay the transaction's own pending writes.
	for k, e := range tx.writes {
		if k.Table != tableName {
			continue
		}
		if e.Delete {
			delete(out, k.Row)
		} else {
			out[k.Row] = e.Value
		}
	}
	return out, nil
}

// ScanKeys returns the visible row ids of a table in ascending order.
func (tx *Txn) ScanKeys(tableName string) ([]int64, error) {
	rows, err := tx.Scan(tableName)
	if err != nil {
		return nil, err
	}
	keys := make([]int64, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// Dump returns a consistent snapshot of a table's live contents using
// a throwaway read-only transaction.
func (db *DB) Dump(tableName string) (map[int64]string, error) {
	tx := db.Begin()
	defer tx.Abort()
	return tx.Scan(tableName)
}

// BulkLoad fills rows [0, rows) of a table with value(row) in one
// internally versioned installation, bypassing concurrency control.
// It is the initial-load path replicas use before traffic starts.
func (db *DB) BulkLoad(tableName string, rows int, value func(int64) string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[tableName]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	ws := writeset.Writeset{Entries: make([]writeset.Entry, 0, rows)}
	for i := int64(0); i < int64(rows); i++ {
		ws.Entries = append(ws.Entries, writeset.Entry{
			Key:   writeset.Key{Table: tableName, Row: i},
			Value: value(i),
		})
	}
	db.installLocked(ws, db.version+1)
	return nil
}
