package sidb

import (
	"fmt"

	"repro/internal/writeset"
)

// Txn is a snapshot-isolated transaction. It is not safe for
// concurrent use by multiple goroutines (like database connections,
// each session owns its transaction); distinct Txns may run
// concurrently.
type Txn struct {
	db       *DB
	snapshot int64
	writes   map[writeset.Key]writeset.Entry
	order    []writeset.Key
	done     bool
}

// Snapshot returns the version this transaction reads from.
func (tx *Txn) Snapshot() int64 { return tx.snapshot }

// ReadOnly reports whether the transaction has performed no writes.
func (tx *Txn) ReadOnly() bool { return len(tx.writes) == 0 }

// Read returns the value of (table, key) visible to the transaction:
// its own write if present, else the newest committed version at or
// below its snapshot. ok is false for rows absent or deleted in the
// snapshot. Only the row's shard is locked (shared), so concurrent
// readers over different shards do not contend at all.
func (tx *Txn) Read(tableName string, key int64) (value string, ok bool, err error) {
	if tx.done {
		return "", false, ErrTxnDone
	}
	k := writeset.Key{Table: tableName, Row: key}
	if e, mine := tx.writes[k]; mine {
		if e.Delete {
			return "", false, nil
		}
		return e.Value, true, nil
	}
	if !tx.db.hasTable(tableName) {
		return "", false, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	v, visible := tx.db.readRow(k, tx.snapshot)
	if !visible || v.deleted {
		return "", false, nil
	}
	return v.value, true, nil
}

// Write records a row write, visible to subsequent Reads of this
// transaction and installed at commit.
func (tx *Txn) Write(tableName string, key int64, value string) error {
	if tx.done {
		return ErrTxnDone
	}
	if !tx.db.hasTable(tableName) {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tx.record(writeset.Entry{Key: writeset.Key{Table: tableName, Row: key}, Value: value})
	return nil
}

// Delete records a row deletion.
func (tx *Txn) Delete(tableName string, key int64) error {
	if tx.done {
		return ErrTxnDone
	}
	if !tx.db.hasTable(tableName) {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tx.record(writeset.Entry{Key: writeset.Key{Table: tableName, Row: key}, Delete: true})
	return nil
}

// record stores a pending write, keeping first-write order.
func (tx *Txn) record(e writeset.Entry) {
	if _, ok := tx.writes[e.Key]; !ok {
		tx.order = append(tx.order, e.Key)
	}
	tx.writes[e.Key] = e
}

// Writeset extracts the transaction's current writeset without
// finishing the transaction — the proxy's "eager writeset extraction"
// used for early certification (§5.1). No key set is precomputed:
// the certifier's inverted index probes entries directly, so the
// commit path never compares writesets pairwise.
func (tx *Txn) Writeset() writeset.Writeset {
	entries := make([]writeset.Entry, 0, len(tx.order))
	for _, k := range tx.order {
		entries = append(entries, tx.writes[k])
	}
	return writeset.Writeset{Entries: entries}
}

// Commit finishes the transaction under first-committer-wins SI.
//
// Read-only transactions always commit and return an empty writeset
// with the transaction's snapshot version. Update transactions commit
// only if none of their written rows has a committed version newer
// than the snapshot; on success the writeset is installed at a fresh
// version, which is returned. On conflict the transaction aborts with
// ErrConflict.
func (tx *Txn) Commit() (writeset.Writeset, int64, error) {
	if tx.done {
		return writeset.Writeset{}, 0, ErrTxnDone
	}
	tx.done = true
	ws := tx.Writeset()

	if ws.Empty() {
		tx.db.release(tx.snapshot)
		return ws, tx.snapshot, nil
	}
	// Committers serialize on commitMu: the conflict check, version
	// assignment and install form one atomic step with respect to
	// every other state mutation. Read-only transactions are never
	// behind this lock.
	tx.db.commitMu.Lock()
	defer tx.db.commitMu.Unlock()
	defer tx.db.release(tx.snapshot)

	for _, e := range ws.Entries {
		if tx.db.latestVersion(e.Key) > tx.snapshot {
			tx.db.stateMu.Lock()
			tx.db.aborts++
			tx.db.stateMu.Unlock()
			return writeset.Writeset{}, 0, fmt.Errorf("%w: row %s", ErrConflict, e.Key)
		}
	}
	v := tx.db.version + 1
	if err := tx.db.journalInstall(ws, v); err != nil {
		return writeset.Writeset{}, 0, err
	}
	tx.db.install(ws, v, false)
	tx.db.advance(v, true)
	return ws, v, nil
}

// CommitAt installs the transaction's writeset at an externally
// assigned version without a local conflict check — the multi-master
// proxy path where the certifier has already certified the transaction
// and assigned its global version. Read-only transactions just finish.
func (tx *Txn) CommitAt(version int64) (writeset.Writeset, error) {
	if tx.done {
		return writeset.Writeset{}, ErrTxnDone
	}
	tx.done = true
	ws := tx.Writeset()

	if ws.Empty() {
		tx.db.release(tx.snapshot)
		return ws, nil
	}
	tx.db.commitMu.Lock()
	defer tx.db.commitMu.Unlock()
	defer tx.db.release(tx.snapshot)

	if version <= tx.db.version {
		return writeset.Writeset{}, fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, tx.db.version)
	}
	if err := tx.db.journalInstall(ws, version); err != nil {
		return writeset.Writeset{}, err
	}
	tx.db.install(ws, version, false)
	tx.db.advance(version, true)
	return ws, nil
}

// Abort discards the transaction. Aborting twice is harmless.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.stateMu.Lock()
	tx.db.releaseLocked(tx.snapshot)
	if len(tx.writes) > 0 {
		tx.db.aborts++
	}
	tx.db.stateMu.Unlock()
}
