package sidb

import (
	"fmt"

	"repro/internal/writeset"
)

// Txn is a snapshot-isolated transaction. It is not safe for
// concurrent use by multiple goroutines (like database connections,
// each session owns its transaction); distinct Txns may run
// concurrently.
type Txn struct {
	db       *DB
	snapshot int64
	writes   map[writeset.Key]writeset.Entry
	order    []writeset.Key
	done     bool
}

// Snapshot returns the version this transaction reads from.
func (tx *Txn) Snapshot() int64 { return tx.snapshot }

// ReadOnly reports whether the transaction has performed no writes.
func (tx *Txn) ReadOnly() bool { return len(tx.writes) == 0 }

// Read returns the value of (table, key) visible to the transaction:
// its own write if present, else the newest committed version at or
// below its snapshot. ok is false for rows absent or deleted in the
// snapshot.
func (tx *Txn) Read(tableName string, key int64) (value string, ok bool, err error) {
	if tx.done {
		return "", false, ErrTxnDone
	}
	k := writeset.Key{Table: tableName, Row: key}
	if e, mine := tx.writes[k]; mine {
		if e.Delete {
			return "", false, nil
		}
		return e.Value, true, nil
	}
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	t, exists := tx.db.tables[tableName]
	if !exists {
		return "", false, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	r, exists := t.rows[key]
	if !exists {
		return "", false, nil
	}
	v, visible := r.visible(tx.snapshot)
	if !visible || v.deleted {
		return "", false, nil
	}
	return v.value, true, nil
}

// Write records a row write, visible to subsequent Reads of this
// transaction and installed at commit.
func (tx *Txn) Write(tableName string, key int64, value string) error {
	if tx.done {
		return ErrTxnDone
	}
	tx.db.mu.Lock()
	_, exists := tx.db.tables[tableName]
	tx.db.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tx.record(writeset.Entry{Key: writeset.Key{Table: tableName, Row: key}, Value: value})
	return nil
}

// Delete records a row deletion.
func (tx *Txn) Delete(tableName string, key int64) error {
	if tx.done {
		return ErrTxnDone
	}
	tx.db.mu.Lock()
	_, exists := tx.db.tables[tableName]
	tx.db.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tx.record(writeset.Entry{Key: writeset.Key{Table: tableName, Row: key}, Delete: true})
	return nil
}

// record stores a pending write, keeping first-write order.
func (tx *Txn) record(e writeset.Entry) {
	if _, ok := tx.writes[e.Key]; !ok {
		tx.order = append(tx.order, e.Key)
	}
	tx.writes[e.Key] = e
}

// Writeset extracts the transaction's current writeset without
// finishing the transaction — the proxy's "eager writeset extraction"
// used for early certification (§5.1).
func (tx *Txn) Writeset() writeset.Writeset {
	ws := writeset.Writeset{Entries: make([]writeset.Entry, 0, len(tx.order))}
	for _, k := range tx.order {
		ws.Entries = append(ws.Entries, tx.writes[k])
	}
	return ws
}

// Commit finishes the transaction under first-committer-wins SI.
//
// Read-only transactions always commit and return an empty writeset
// with the transaction's snapshot version. Update transactions commit
// only if none of their written rows has a committed version newer
// than the snapshot; on success the writeset is installed at a fresh
// version, which is returned. On conflict the transaction aborts with
// ErrConflict.
func (tx *Txn) Commit() (writeset.Writeset, int64, error) {
	if tx.done {
		return writeset.Writeset{}, 0, ErrTxnDone
	}
	tx.done = true
	ws := tx.Writeset()

	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	defer tx.db.release(tx.snapshot)

	if ws.Empty() {
		return ws, tx.snapshot, nil
	}
	for _, e := range ws.Entries {
		t, ok := tx.db.tables[e.Key.Table]
		if !ok {
			continue
		}
		r, ok := t.rows[e.Key.Row]
		if !ok {
			continue
		}
		if r.latest() > tx.snapshot {
			tx.db.aborts++
			return writeset.Writeset{}, 0, fmt.Errorf("%w: row %s", ErrConflict, e.Key)
		}
	}
	v := tx.db.version + 1
	tx.db.installLocked(ws, v)
	tx.db.commits++
	return ws, v, nil
}

// CommitAt installs the transaction's writeset at an externally
// assigned version without a local conflict check — the multi-master
// proxy path where the certifier has already certified the transaction
// and assigned its global version. Read-only transactions just finish.
func (tx *Txn) CommitAt(version int64) (writeset.Writeset, error) {
	if tx.done {
		return writeset.Writeset{}, ErrTxnDone
	}
	tx.done = true
	ws := tx.Writeset()

	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	defer tx.db.release(tx.snapshot)

	if ws.Empty() {
		return ws, nil
	}
	if version <= tx.db.version {
		return writeset.Writeset{}, fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, tx.db.version)
	}
	tx.db.installLocked(ws, version)
	tx.db.commits++
	return ws, nil
}

// Abort discards the transaction. Aborting twice is harmless.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	tx.db.release(tx.snapshot)
	if len(tx.writes) > 0 {
		tx.db.aborts++
	}
}
