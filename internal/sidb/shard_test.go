package sidb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
	"repro/internal/writeset"
)

// refDB is an unsharded reference model of first-committer-wins SI:
// a last-writer version per row plus a value map per version horizon.
// It decides commit/abort exactly as the specification says the
// engine must, so driving both with the same operation stream checks
// that sharding changed the locking, not the semantics.
type refDB struct {
	version    int64
	lastWriter map[int64]int64
	values     map[int64][]refVersion
}

type refVersion struct {
	version int64
	value   string
	deleted bool
}

func newRefDB() *refDB {
	return &refDB{lastWriter: make(map[int64]int64), values: make(map[int64][]refVersion)}
}

func (r *refDB) read(row, snapshot int64) (string, bool) {
	chain := r.values[row]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].version <= snapshot {
			if chain[i].deleted {
				return "", false
			}
			return chain[i].value, true
		}
	}
	return "", false
}

// commit applies an update of rows at the given snapshot; it reports
// whether first-committer-wins allows the commit.
func (r *refDB) commit(snapshot int64, writes map[int64]string, deletes map[int64]bool) bool {
	for row := range writes {
		if r.lastWriter[row] > snapshot {
			return false
		}
	}
	for row := range deletes {
		if r.lastWriter[row] > snapshot {
			return false
		}
	}
	r.version++
	for row, val := range writes {
		r.lastWriter[row] = r.version
		r.values[row] = append(r.values[row], refVersion{version: r.version, value: val})
	}
	for row := range deletes {
		r.lastWriter[row] = r.version
		r.values[row] = append(r.values[row], refVersion{version: r.version, deleted: true})
	}
	return true
}

// TestShardedMatchesReference drives an identical randomized
// single-stream workload through the sharded engine and the reference
// model: every commit/abort decision, returned version, and read
// result must match.
func TestShardedMatchesReference(t *testing.T) {
	db := New()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ref := newRefDB()
	rng := stats.NewRand(0xC0FFEE)
	const rows = 128

	// Keep a window of concurrent transactions so snapshots go stale
	// and conflicts actually occur.
	type pending struct {
		tx      *Txn
		refSnap int64
		writes  map[int64]string
		deletes map[int64]bool
	}
	var window []pending

	for step := 0; step < 4000; step++ {
		// Open a transaction and buffer a few writes.
		tx := db.Begin()
		p := pending{
			tx:      tx,
			refSnap: tx.Snapshot(),
			writes:  make(map[int64]string),
			deletes: make(map[int64]bool),
		}
		nWrites := 1 + rng.Intn(3)
		for i := 0; i < nWrites; i++ {
			row := int64(rng.Intn(rows))
			if rng.Intn(8) == 0 {
				if err := tx.Delete("t", row); err != nil {
					t.Fatal(err)
				}
				delete(p.writes, row)
				p.deletes[row] = true
			} else {
				val := fmt.Sprintf("v%d-%d", step, i)
				if err := tx.Write("t", row, val); err != nil {
					t.Fatal(err)
				}
				delete(p.deletes, row)
				p.writes[row] = val
			}
		}
		// Cross-check a read against the reference at the snapshot.
		row := int64(rng.Intn(rows))
		if _, own := p.writes[row]; !own && !p.deletes[row] {
			got, gotOK, err := tx.Read("t", row)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := ref.read(row, p.refSnap)
			if got != want || gotOK != wantOK {
				t.Fatalf("step %d: read(%d)@%d = %q/%v, reference %q/%v",
					step, row, p.refSnap, got, gotOK, want, wantOK)
			}
		}
		window = append(window, p)

		// Commit a random transaction from the window once it is full.
		if len(window) >= 4 {
			i := rng.Intn(len(window))
			q := window[i]
			window = append(window[:i], window[i+1:]...)
			_, v, err := q.tx.Commit()
			committed := err == nil
			if err != nil && !errors.Is(err, ErrConflict) {
				t.Fatal(err)
			}
			wantCommit := ref.commit(q.refSnap, q.writes, q.deletes)
			if committed != wantCommit {
				t.Fatalf("step %d: sharded committed=%v, reference=%v (snap %d writes %v deletes %v)",
					step, committed, wantCommit, q.refSnap, q.writes, q.deletes)
			}
			if committed && v != ref.version {
				t.Fatalf("step %d: version %d, reference %d", step, v, ref.version)
			}
		}
		if step%512 == 511 {
			db.GC()
		}
	}
	for _, q := range window {
		q.tx.Abort()
	}

	// Final convergence: latest state must match row for row.
	dump, err := db.Dump("t")
	if err != nil {
		t.Fatal(err)
	}
	for row := int64(0); row < rows; row++ {
		want, wantOK := ref.read(row, ref.version)
		got, gotOK := dump[row], false
		if _, present := dump[row]; present {
			gotOK = true
		}
		if gotOK != wantOK || (wantOK && got != want) {
			t.Fatalf("row %d: sharded %q/%v, reference %q/%v", row, got, gotOK, want, wantOK)
		}
	}
}

// TestStressShardedReadersWriters hammers one database with parallel
// read-only transactions, update committers, writeset application and
// GC. Run under -race it exercises every lock edge of the sharded
// design; the invariants detect torn commits (a snapshot observing
// half of a transaction's writes).
func TestStressShardedReadersWriters(t *testing.T) {
	db := New()
	if err := db.CreateTable("acct"); err != nil {
		t.Fatal(err)
	}
	// Pairs of rows (2i, 2i+1) are always written together with the
	// same value; a reader seeing two different values in one snapshot
	// has observed a torn commit.
	const pairs = 64
	if err := db.BulkLoad("acct", 2*pairs, func(i int64) string { return "init" }); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const readers = 8
	const perWriter = 300
	var writerWg, bgWg sync.WaitGroup
	var stop atomic.Bool
	var commits atomic.Int64

	for w := 0; w < writers; w++ {
		w := w
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			rng := stats.NewRand(uint64(0xBEEF + w))
			for i := 0; i < perWriter; i++ {
				pair := int64(rng.Intn(pairs))
				val := fmt.Sprintf("w%d-%d", w, i)
				for {
					tx := db.Begin()
					if err := tx.Write("acct", 2*pair, val); err != nil {
						t.Error(err)
						return
					}
					if err := tx.Write("acct", 2*pair+1, val); err != nil {
						t.Error(err)
						return
					}
					_, _, err := tx.Commit()
					if err == nil {
						commits.Add(1)
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		bgWg.Add(1)
		go func() {
			defer bgWg.Done()
			rng := stats.NewRand(uint64(0xFEED + r))
			for !stop.Load() {
				tx := db.Begin()
				pair := int64(rng.Intn(pairs))
				a, okA, errA := tx.Read("acct", 2*pair)
				b, okB, errB := tx.Read("acct", 2*pair+1)
				if errA != nil || errB != nil {
					t.Errorf("read errors: %v %v", errA, errB)
					return
				}
				if !okA || !okB || a != b {
					t.Errorf("torn commit observed: pair %d = %q/%q (%v/%v)", pair, a, b, okA, okB)
					return
				}
				tx.Abort()
			}
		}()
	}
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for !stop.Load() {
			db.GC()
		}
	}()
	// A competing single-row update stream outside the pair space, so
	// shard write locks interleave with the pair commits.
	bgWg.Add(1)
	go func() {
		defer bgWg.Done()
		for !stop.Load() {
			tx := db.Begin()
			if err := tx.Write("acct", int64(2*pairs), "side"); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := tx.Commit(); err != nil && !errors.Is(err, ErrConflict) {
				t.Error(err)
				return
			}
		}
	}()

	writerWg.Wait()
	stop.Store(true)
	bgWg.Wait()

	dbCommits, _ := db.Stats()
	if dbCommits < commits.Load() {
		t.Fatalf("db counted %d commits, writers observed %d", dbCommits, commits.Load())
	}
}

func TestShardDistribution(t *testing.T) {
	// Sanity: sequential row ids of one table must not all hash into
	// one shard, or the sharding buys nothing.
	counts := make(map[int]int)
	for i := int64(0); i < 1024; i++ {
		counts[shardIndex(writeset.Key{Table: "item", Row: i})]++
	}
	if len(counts) < shardCount/2 {
		t.Fatalf("1024 sequential rows landed in only %d/%d shards", len(counts), shardCount)
	}
}
