// Package sidb is an in-memory multi-version storage engine providing
// snapshot isolation (SI) and generalized snapshot isolation (GSI),
// the concurrency-control substrate of the paper's replicated systems.
// It stands in for PostgreSQL running at the "serializable" (snapshot)
// isolation level in the authors' prototypes (§5).
//
// Semantics implemented:
//
//   - Every transaction receives a snapshot: the version of the last
//     committed state visible at begin time (Begin), or an explicitly
//     older version for GSI replicas (BeginAt), and reads exclusively
//     from it plus its own writes.
//   - Read-only transactions always commit; they never block or abort
//     and never cause update transactions to block or abort.
//   - Update transactions commit only if no concurrent committed
//     transaction wrote an overlapping row (first-committer-wins
//     write-write conflict detection at row granularity).
//   - Committing produces a Writeset that captures the transaction's
//     effects for certification and update propagation, the way the
//     prototype extracts writesets with triggers (§4.1.1).
//   - ApplyWriteset installs a remote transaction's effects at an
//     explicit global version, the slave/replica proxy path.
//
// The engine is safe for concurrent use.
package sidb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/writeset"
)

// Common errors.
var (
	// ErrConflict reports a write-write conflict with a concurrently
	// committed transaction; the transaction was aborted.
	ErrConflict = errors.New("sidb: write-write conflict")
	// ErrTxnDone reports use of a committed or aborted transaction.
	ErrTxnDone = errors.New("sidb: transaction already finished")
	// ErrNoTable reports an operation on an unknown table.
	ErrNoTable = errors.New("sidb: no such table")
	// ErrStaleVersion reports applying a writeset at a version not
	// newer than the database's current version.
	ErrStaleVersion = errors.New("sidb: writeset version not newer than database version")
)

// rowVersion is one committed version of a row.
type rowVersion struct {
	version int64
	value   string
	deleted bool
}

// row is a version chain, ascending by version.
type row struct {
	versions []rowVersion
}

// visible returns the newest version at or below snapshot.
func (r *row) visible(snapshot int64) (rowVersion, bool) {
	// Version chains are short (GC keeps them trimmed); scan from the
	// newest end.
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].version <= snapshot {
			return r.versions[i], true
		}
	}
	return rowVersion{}, false
}

// latest returns the newest committed version number of the row.
func (r *row) latest() int64 {
	if len(r.versions) == 0 {
		return 0
	}
	return r.versions[len(r.versions)-1].version
}

// table is a named collection of rows keyed by int64.
type table struct {
	rows map[int64]*row
}

// DB is a snapshot-isolated multi-version database.
type DB struct {
	mu      sync.Mutex
	tables  map[string]*table
	version int64 // version of the latest committed state

	active  map[int64]int // snapshot version -> number of active txns
	commits int64
	aborts  int64
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: make(map[string]*table),
		active: make(map[int64]int),
	}
}

// CreateTable adds an empty table; creating an existing table is an
// error.
func (db *DB) CreateTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("sidb: table %q already exists", name)
	}
	db.tables[name] = &table{rows: make(map[int64]*row)}
	return nil
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Version returns the version of the latest committed state.
func (db *DB) Version() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// Stats returns the number of committed and aborted update
// transactions (read-only commits are not counted).
func (db *DB) Stats() (commits, aborts int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.commits, db.aborts
}

// Begin starts a transaction on the latest committed snapshot (SI).
func (db *DB) Begin() *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.beginLocked(db.version)
}

// BeginAt starts a transaction on an explicit snapshot version, which
// may be older than the latest (GSI). It is capped at the current
// version: a replica cannot observe the future.
func (db *DB) BeginAt(snapshot int64) *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	if snapshot > db.version {
		snapshot = db.version
	}
	if snapshot < 0 {
		snapshot = 0
	}
	return db.beginLocked(snapshot)
}

func (db *DB) beginLocked(snapshot int64) *Txn {
	db.active[snapshot]++
	return &Txn{
		db:       db,
		snapshot: snapshot,
		writes:   make(map[writeset.Key]writeset.Entry),
	}
}

// oldestActiveLocked returns the oldest snapshot still in use, or the
// current version when idle.
func (db *DB) oldestActiveLocked() int64 {
	oldest := db.version
	for v := range db.active {
		if v < oldest {
			oldest = v
		}
	}
	return oldest
}

// release marks a transaction's snapshot as no longer in use.
func (db *DB) release(snapshot int64) {
	if n := db.active[snapshot]; n <= 1 {
		delete(db.active, snapshot)
	} else {
		db.active[snapshot] = n - 1
	}
}

// ApplyWriteset installs a remote transaction's writeset at the given
// global version. Versions must arrive in increasing order (the
// replica proxy applies writesets in commit order); unknown tables are
// created implicitly because a propagated writeset is authoritative.
func (db *DB) ApplyWriteset(ws writeset.Writeset, version int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if version <= db.version {
		return fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, db.version)
	}
	db.installLocked(ws, version)
	return nil
}

// installLocked writes every entry of ws as version v and advances the
// database version.
func (db *DB) installLocked(ws writeset.Writeset, v int64) {
	for _, e := range ws.Entries {
		t, ok := db.tables[e.Key.Table]
		if !ok {
			t = &table{rows: make(map[int64]*row)}
			db.tables[e.Key.Table] = t
		}
		r, ok := t.rows[e.Key.Row]
		if !ok {
			r = &row{}
			t.rows[e.Key.Row] = r
		}
		r.versions = append(r.versions, rowVersion{version: v, value: e.Value, deleted: e.Delete})
	}
	db.version = v
}

// GC prunes row versions that no active or future snapshot can see:
// for each row, versions strictly older than the newest version at or
// below the oldest active snapshot are dropped. It returns the number
// of versions removed.
func (db *DB) GC() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	horizon := db.oldestActiveLocked()
	removed := 0
	for _, t := range db.tables {
		for _, r := range t.rows {
			keep := 0
			// Find the newest version <= horizon; everything before it
			// is invisible to every present and future snapshot.
			for i := len(r.versions) - 1; i >= 0; i-- {
				if r.versions[i].version <= horizon {
					keep = i
					break
				}
			}
			if keep > 0 {
				removed += keep
				r.versions = append([]rowVersion(nil), r.versions[keep:]...)
			}
		}
	}
	return removed
}

// rowCount returns the number of live rows in a table (latest visible
// version not deleted), for tests and loaders.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	n := 0
	for _, r := range t.rows {
		if len(r.versions) > 0 && !r.versions[len(r.versions)-1].deleted {
			n++
		}
	}
	return n, nil
}
