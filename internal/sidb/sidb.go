// Package sidb is an in-memory multi-version storage engine providing
// snapshot isolation (SI) and generalized snapshot isolation (GSI),
// the concurrency-control substrate of the paper's replicated systems.
// It stands in for PostgreSQL running at the "serializable" (snapshot)
// isolation level in the authors' prototypes (§5).
//
// Semantics implemented:
//
//   - Every transaction receives a snapshot: the version of the last
//     committed state visible at begin time (Begin), or an explicitly
//     older version for GSI replicas (BeginAt), and reads exclusively
//     from it plus its own writes.
//   - Read-only transactions always commit; they never block or abort
//     and never cause update transactions to block or abort.
//   - Update transactions commit only if no concurrent committed
//     transaction wrote an overlapping row (first-committer-wins
//     write-write conflict detection at row granularity).
//   - Committing produces a Writeset that captures the transaction's
//     effects for certification and update propagation, the way the
//     prototype extracts writesets with triggers (§4.1.1).
//   - ApplyWriteset installs a remote transaction's effects at an
//     explicit global version, the slave/replica proxy path.
//
// The engine is safe for concurrent use. Rows are hash-partitioned
// across shardCount shards, each guarded by its own RWMutex, so the
// read-only transactions that dominate the TPC-W and RUBiS mixes
// proceed in parallel and only ever share a read lock; update commits
// serialize on a single commit mutex (version assignment must be
// total), touching shard write locks only while installing their rows.
// The version counter and active-snapshot table live under a small
// dedicated lock of their own.
package sidb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/writeset"
)

// Common errors.
var (
	// ErrConflict reports a write-write conflict with a concurrently
	// committed transaction; the transaction was aborted.
	ErrConflict = errors.New("sidb: write-write conflict")
	// ErrTxnDone reports use of a committed or aborted transaction.
	ErrTxnDone = errors.New("sidb: transaction already finished")
	// ErrNoTable reports an operation on an unknown table.
	ErrNoTable = errors.New("sidb: no such table")
	// ErrStaleVersion reports applying a writeset at a version not
	// newer than the database's current version.
	ErrStaleVersion = errors.New("sidb: writeset version not newer than database version")
)

// rowVersion is one committed version of a row.
type rowVersion struct {
	version int64
	value   string
	deleted bool
}

// row is a version chain, ascending by version.
type row struct {
	versions []rowVersion
}

// visible returns the newest version at or below snapshot.
func (r *row) visible(snapshot int64) (rowVersion, bool) {
	// Version chains are short (GC keeps them trimmed); scan from the
	// newest end.
	for i := len(r.versions) - 1; i >= 0; i-- {
		if r.versions[i].version <= snapshot {
			return r.versions[i], true
		}
	}
	return rowVersion{}, false
}

// latest returns the newest committed version number of the row.
func (r *row) latest() int64 {
	if len(r.versions) == 0 {
		return 0
	}
	return r.versions[len(r.versions)-1].version
}

// table is a shard's slice of a named table: the rows whose keys hash
// into the shard.
type table struct {
	rows map[int64]*row
}

// shardCount is the number of row partitions. It is a power of two so
// the hash reduces with a mask; 32 comfortably exceeds the core counts
// the paper's 16-machine cluster models.
const shardCount = 32

// shard is one row partition with its own reader-writer lock.
type shard struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// shardIndex hashes a row key onto its shard (FNV-1a over the table
// name and row id).
func shardIndex(k writeset.Key) int {
	h := uint32(2166136261)
	for i := 0; i < len(k.Table); i++ {
		h = (h ^ uint32(k.Table[i])) * 16777619
	}
	r := uint64(k.Row)
	for i := 0; i < 8; i++ {
		h = (h ^ uint32(r&0xff)) * 16777619
		r >>= 8
	}
	return int(h & (shardCount - 1))
}

// DB is a snapshot-isolated multi-version database.
type DB struct {
	// commitMu serializes state mutation: update commits, writeset
	// application, bulk loads and GC. Read-only transactions never
	// take it.
	commitMu sync.Mutex

	// journal, when set, observes every writeset about to be installed
	// (local commits, applied remote writesets and bulk loads alike)
	// with the version it will be installed at. It runs under commitMu,
	// so invocations arrive in exact version order — the apply stream a
	// write-ahead log replays to rebuild this database. A journal error
	// aborts the installation.
	journal func(ws writeset.Writeset, version int64) error

	shards [shardCount]shard

	// tableMu guards the table registry; reads take it shared.
	tableMu sync.RWMutex
	tables  map[string]struct{}

	// stateMu guards the version counter, the active-snapshot table
	// and the commit/abort counters.
	stateMu sync.Mutex
	version int64 // version of the latest committed state
	active  map[int64]int
	commits int64
	aborts  int64
}

// New creates an empty database.
func New() *DB {
	db := &DB{
		tables: make(map[string]struct{}),
		active: make(map[int64]int),
	}
	for i := range db.shards {
		db.shards[i].tables = make(map[string]*table)
	}
	return db
}

// SetJournal attaches the apply-time journal hook. Set it before the
// database takes traffic (typically right after WAL replay); it is not
// synchronized against in-flight commits.
func (db *DB) SetJournal(j func(ws writeset.Writeset, version int64) error) {
	db.journal = j
}

// journalInstall runs the journal hook for an imminent installation.
// The caller holds commitMu.
func (db *DB) journalInstall(ws writeset.Writeset, version int64) error {
	if db.journal == nil {
		return nil
	}
	if err := db.journal(ws, version); err != nil {
		return fmt.Errorf("sidb: journal: %w", err)
	}
	return nil
}

// CreateTable adds an empty table; creating an existing table is an
// error.
func (db *DB) CreateTable(name string) error {
	db.tableMu.Lock()
	defer db.tableMu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("sidb: table %q already exists", name)
	}
	db.tables[name] = struct{}{}
	return nil
}

// hasTable reports whether the table exists.
func (db *DB) hasTable(name string) bool {
	db.tableMu.RLock()
	_, ok := db.tables[name]
	db.tableMu.RUnlock()
	return ok
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string {
	db.tableMu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.tableMu.RUnlock()
	sort.Strings(names)
	return names
}

// Version returns the version of the latest committed state.
func (db *DB) Version() int64 {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.version
}

// Stats returns the number of committed and aborted update
// transactions (read-only commits are not counted).
func (db *DB) Stats() (commits, aborts int64) {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.commits, db.aborts
}

// Begin starts a transaction on the latest committed snapshot (SI).
func (db *DB) Begin() *Txn {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.beginLocked(db.version)
}

// BeginAt starts a transaction on an explicit snapshot version, which
// may be older than the latest (GSI). It is capped at the current
// version: a replica cannot observe the future.
func (db *DB) BeginAt(snapshot int64) *Txn {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if snapshot > db.version {
		snapshot = db.version
	}
	if snapshot < 0 {
		snapshot = 0
	}
	return db.beginLocked(snapshot)
}

func (db *DB) beginLocked(snapshot int64) *Txn {
	db.active[snapshot]++
	return &Txn{
		db:       db,
		snapshot: snapshot,
		writes:   make(map[writeset.Key]writeset.Entry),
	}
}

// oldestActiveLocked returns the oldest snapshot still in use, or the
// current version when idle. The caller must hold stateMu.
func (db *DB) oldestActiveLocked() int64 {
	oldest := db.version
	for v := range db.active {
		if v < oldest {
			oldest = v
		}
	}
	return oldest
}

// release marks a transaction's snapshot as no longer in use.
func (db *DB) release(snapshot int64) {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	db.releaseLocked(snapshot)
}

func (db *DB) releaseLocked(snapshot int64) {
	if n := db.active[snapshot]; n <= 1 {
		delete(db.active, snapshot)
	} else {
		db.active[snapshot] = n - 1
	}
}

// readRow returns the version chain state of one row under its
// shard's read lock, reporting whether the row exists at all.
func (db *DB) readRow(k writeset.Key, snapshot int64) (rowVersion, bool) {
	s := &db.shards[shardIndex(k)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[k.Table]
	if !ok {
		return rowVersion{}, false
	}
	r, ok := t.rows[k.Row]
	if !ok {
		return rowVersion{}, false
	}
	return r.visible(snapshot)
}

// latestVersion returns the newest committed version of a row, 0 when
// the row has never been written. Callers hold commitMu, so the chain
// cannot change underfoot; the shard read lock is still taken to
// order the read after any in-flight chain append.
func (db *DB) latestVersion(k writeset.Key) int64 {
	s := &db.shards[shardIndex(k)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[k.Table]
	if !ok {
		return 0
	}
	r, ok := t.rows[k.Row]
	if !ok {
		return 0
	}
	return r.latest()
}

// ApplyWriteset installs a remote transaction's writeset at the given
// global version. Versions must arrive in increasing order (the
// replica proxy applies writesets in commit order); unknown tables are
// created implicitly because a propagated writeset is authoritative.
func (db *DB) ApplyWriteset(ws writeset.Writeset, version int64) error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if version <= db.version {
		return fmt.Errorf("%w: %d <= %d", ErrStaleVersion, version, db.version)
	}
	if err := db.journalInstall(ws, version); err != nil {
		return err
	}
	db.install(ws, version, true)
	db.advance(version, false)
	return nil
}

// ApplyBatch installs a run of writesets at the next consecutive
// versions (current+1 .. current+len(wss)) as one atomic batch — the
// parallel applier's entry point. The journal hook fires for every
// writeset up front, in version order under commitMu, so a write-ahead
// log observes exactly the stream a serial ApplyWriteset loop would
// have produced. Installation is then delegated to run, which must
// call install(i) exactly once for each i in [0, len(wss)) and may do
// so from multiple goroutines, PROVIDED that for any two writesets
// sharing a row key the lower-indexed install returns before the
// higher-indexed one starts (row version chains are append-ordered
// ascending). A nil run installs serially. The version counter
// advances only after every install returned, so a concurrent reader's
// snapshot never admits a half-installed batch.
//
// It returns how many writesets were applied: on a journal error the
// already-journaled prefix is still installed (matching the serial
// loop, where earlier records were already applied when a later
// journal append failed) and the error is returned with the count.
func (db *DB) ApplyBatch(wss []writeset.Writeset, run func(install func(i int))) (int, error) {
	if len(wss) == 0 {
		return 0, nil
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	// All writers hold commitMu, so the version counter is stable here
	// without taking stateMu.
	base := db.version
	n := len(wss)
	var jerr error
	for i := 0; i < n; i++ {
		if err := db.journalInstall(wss[i], base+int64(i)+1); err != nil {
			jerr, n = err, i
			break
		}
	}
	if n == 0 {
		return 0, jerr
	}
	if run == nil || n == 1 {
		for i := 0; i < n; i++ {
			db.install(wss[i], base+int64(i)+1, true)
		}
	} else {
		limit := n // journal may have truncated the batch
		run(func(i int) {
			if i < limit {
				db.install(wss[i], base+int64(i)+1, true)
			}
		})
	}
	db.advance(base+int64(n), false)
	return n, jerr
}

// install writes every entry of ws as version v. The caller must hold
// commitMu, and must advance the version counter (under stateMu)
// after install returns, so a concurrent reader's snapshot never
// admits a half-installed commit. Shard write locks are taken per
// entry.
func (db *DB) install(ws writeset.Writeset, v int64, createTables bool) {
	if createTables {
		for _, e := range ws.Entries {
			if !db.hasTable(e.Key.Table) {
				db.tableMu.Lock()
				db.tables[e.Key.Table] = struct{}{}
				db.tableMu.Unlock()
			}
		}
	}
	for _, e := range ws.Entries {
		s := &db.shards[shardIndex(e.Key)]
		s.mu.Lock()
		t, ok := s.tables[e.Key.Table]
		if !ok {
			t = &table{rows: make(map[int64]*row)}
			s.tables[e.Key.Table] = t
		}
		r, ok := t.rows[e.Key.Row]
		if !ok {
			r = &row{}
			t.rows[e.Key.Row] = r
		}
		r.versions = append(r.versions, rowVersion{version: v, value: e.Value, deleted: e.Delete})
		s.mu.Unlock()
	}
}

// advance publishes v as the latest committed version, optionally
// counting a commit. The caller must hold commitMu.
func (db *DB) advance(v int64, countCommit bool) {
	db.stateMu.Lock()
	db.version = v
	if countCommit {
		db.commits++
	}
	db.stateMu.Unlock()
}

// GC prunes row versions that no active or future snapshot can see:
// for each row, versions strictly older than the newest version at or
// below the oldest active snapshot are dropped. It returns the number
// of versions removed.
func (db *DB) GC() int {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	// stateMu is held for the whole prune: a BeginAt racing the GC
	// could otherwise register a pre-horizon snapshot after the
	// horizon was computed and then read pruned state. Holding it
	// blocks Begin/Abort for the duration, which is what the seed's
	// single mutex did too.
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	horizon := db.oldestActiveLocked()
	removed := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.Lock()
		for _, t := range s.tables {
			for _, r := range t.rows {
				keep := 0
				// Find the newest version <= horizon; everything before
				// it is invisible to every present and future snapshot.
				for i := len(r.versions) - 1; i >= 0; i-- {
					if r.versions[i].version <= horizon {
						keep = i
						break
					}
				}
				if keep > 0 {
					removed += keep
					r.versions = append([]rowVersion(nil), r.versions[keep:]...)
				}
			}
		}
		s.mu.Unlock()
	}
	return removed
}

// RowCount returns the number of live rows in a table (latest visible
// version not deleted), for tests and loaders. It holds commitMu so
// the count never observes a half-installed commit.
func (db *DB) RowCount(tableName string) (int, error) {
	if !db.hasTable(tableName) {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		if t, ok := s.tables[tableName]; ok {
			for _, r := range t.rows {
				if len(r.versions) > 0 && !r.versions[len(r.versions)-1].deleted {
					n++
				}
			}
		}
		s.mu.RUnlock()
	}
	return n, nil
}
