package sidb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/writeset"
)

func newDB(t *testing.T, tables ...string) *DB {
	t.Helper()
	db := New()
	for _, tb := range tables {
		if err := db.CreateTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustCommit(t *testing.T, tx *Txn) int64 {
	t.Helper()
	_, v, err := tx.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return v
}

func TestBasicReadWrite(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	if err := tx.Write("item", 1, "book"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	tx2 := db.Begin()
	v, ok, err := tx2.Read("item", 1)
	if err != nil || !ok || v != "book" {
		t.Fatalf("read = %q, %v, %v", v, ok, err)
	}
	mustCommit(t, tx2)
}

func TestReadMissingRowAndTable(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	if _, ok, err := tx.Read("item", 404); ok || err != nil {
		t.Fatalf("missing row: ok=%v err=%v", ok, err)
	}
	if _, _, err := tx.Read("nope", 1); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table err = %v", err)
	}
	if err := tx.Write("nope", 1, "x"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("write to missing table err = %v", err)
	}
}

func TestSnapshotIsolationFromConcurrentCommit(t *testing.T) {
	db := newDB(t, "item")
	setup := db.Begin()
	setup.Write("item", 1, "old")
	mustCommit(t, setup)

	reader := db.Begin()
	writer := db.Begin()
	writer.Write("item", 1, "new")
	mustCommit(t, writer)

	// The reader's snapshot predates the writer's commit.
	v, ok, _ := reader.Read("item", 1)
	if !ok || v != "old" {
		t.Fatalf("snapshot leaked: %q %v", v, ok)
	}
	mustCommit(t, reader)

	// A fresh transaction sees the new value.
	after := db.Begin()
	v, _, _ = after.Read("item", 1)
	if v != "new" {
		t.Fatalf("fresh snapshot = %q", v)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 7, "mine")
	v, ok, _ := tx.Read("item", 7)
	if !ok || v != "mine" {
		t.Fatalf("own write invisible: %q %v", v, ok)
	}
	tx.Delete("item", 7)
	if _, ok, _ := tx.Read("item", 7); ok {
		t.Fatal("own delete invisible")
	}
	tx.Abort()
}

func TestFirstCommitterWins(t *testing.T) {
	db := newDB(t, "item")
	seed := db.Begin()
	seed.Write("item", 1, "v0")
	mustCommit(t, seed)

	a := db.Begin()
	b := db.Begin()
	a.Write("item", 1, "a")
	b.Write("item", 1, "b")

	mustCommit(t, a)
	_, _, err := b.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	_, aborts := db.Stats()
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
}

func TestDisjointWritersBothCommit(t *testing.T) {
	db := newDB(t, "item")
	a := db.Begin()
	b := db.Begin()
	a.Write("item", 1, "a")
	b.Write("item", 2, "b")
	mustCommit(t, a)
	mustCommit(t, b)
}

func TestReadOnlyNeverAborts(t *testing.T) {
	db := newDB(t, "item")
	seed := db.Begin()
	seed.Write("item", 1, "x")
	mustCommit(t, seed)

	ro := db.Begin()
	ro.Read("item", 1)
	w := db.Begin()
	w.Write("item", 1, "y")
	mustCommit(t, w)

	ws, v, err := ro.Commit()
	if err != nil || !ws.Empty() {
		t.Fatalf("read-only commit: ws=%v err=%v", ws, err)
	}
	if v != ro.Snapshot() {
		t.Fatalf("read-only commit version %d != snapshot %d", v, ro.Snapshot())
	}
}

func TestWriteSkewPermitted(t *testing.T) {
	// SI's classic anomaly: two transactions each read the other's row
	// and write their own; both commit because their writesets are
	// disjoint. This documents that the engine is SI, not serializable.
	db := newDB(t, "oncall")
	seed := db.Begin()
	seed.Write("oncall", 1, "alice")
	seed.Write("oncall", 2, "bob")
	mustCommit(t, seed)

	a := db.Begin()
	b := db.Begin()
	a.Read("oncall", 2)
	a.Write("oncall", 1, "off")
	b.Read("oncall", 1)
	b.Write("oncall", 2, "off")
	mustCommit(t, a)
	mustCommit(t, b) // would abort under serializability
}

func TestGSIStaleSnapshot(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 1, "v1")
	v1 := mustCommit(t, tx)
	tx = db.Begin()
	tx.Write("item", 1, "v2")
	mustCommit(t, tx)

	old := db.BeginAt(v1)
	v, ok, _ := old.Read("item", 1)
	if !ok || v != "v1" {
		t.Fatalf("stale snapshot read %q %v", v, ok)
	}
	old.Abort()

	// Snapshots are capped at the current version.
	future := db.BeginAt(db.Version() + 100)
	if future.Snapshot() != db.Version() {
		t.Fatalf("future snapshot = %d, want %d", future.Snapshot(), db.Version())
	}
	future.Abort()
	if neg := db.BeginAt(-5); neg.Snapshot() != 0 {
		t.Fatalf("negative snapshot = %d", neg.Snapshot())
	}
}

func TestGSIStaleWriterAborts(t *testing.T) {
	// A transaction on a stale snapshot conflicts with any commit it
	// did not observe that overlaps its writeset.
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 1, "v1")
	v1 := mustCommit(t, tx)
	tx = db.Begin()
	tx.Write("item", 1, "v2")
	mustCommit(t, tx)

	stale := db.BeginAt(v1)
	stale.Write("item", 1, "late")
	if _, _, err := stale.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale writer got %v", err)
	}
}

func TestDeleteSemantics(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 1, "x")
	mustCommit(t, tx)

	del := db.Begin()
	del.Delete("item", 1)
	ws, _, err := del.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 1 || !ws.Entries[0].Delete {
		t.Fatalf("delete writeset = %v", ws)
	}
	after := db.Begin()
	if _, ok, _ := after.Read("item", 1); ok {
		t.Fatal("deleted row visible")
	}
	n, _ := db.RowCount("item")
	if n != 0 {
		t.Fatalf("RowCount = %d", n)
	}
}

func TestUseAfterFinish(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	mustCommit(t, tx)
	if _, _, err := tx.Read("item", 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("read after commit: %v", err)
	}
	if err := tx.Write("item", 1, "x"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("write after commit: %v", err)
	}
	if _, _, err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	tx.Abort() // harmless
}

func TestAbortDiscardsWrites(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 1, "x")
	tx.Abort()
	check := db.Begin()
	if _, ok, _ := check.Read("item", 1); ok {
		t.Fatal("aborted write visible")
	}
	if db.Version() != 0 {
		t.Fatalf("version advanced to %d", db.Version())
	}
}

func TestCreateTableTwice(t *testing.T) {
	db := newDB(t, "item")
	if err := db.CreateTable("item"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	tables := db.Tables()
	if len(tables) != 1 || tables[0] != "item" {
		t.Fatalf("tables = %v", tables)
	}
}

func TestApplyWriteset(t *testing.T) {
	db := newDB(t)
	ws := writeset.Writeset{Entries: []writeset.Entry{
		{Key: writeset.Key{Table: "item", Row: 1}, Value: "remote"},
	}}
	if err := db.ApplyWriteset(ws, 5); err != nil {
		t.Fatal(err)
	}
	if db.Version() != 5 {
		t.Fatalf("version = %d", db.Version())
	}
	// Table was created implicitly.
	tx := db.Begin()
	v, ok, err := tx.Read("item", 1)
	if err != nil || !ok || v != "remote" {
		t.Fatalf("read after apply: %q %v %v", v, ok, err)
	}
	tx.Abort()

	// Stale or duplicate versions are rejected.
	if err := db.ApplyWriteset(ws, 5); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale apply: %v", err)
	}
	if err := db.ApplyWriteset(ws, 3); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("older apply: %v", err)
	}
}

func TestCommitAt(t *testing.T) {
	db := newDB(t, "item")
	tx := db.Begin()
	tx.Write("item", 1, "x")
	ws, err := tx.CommitAt(10)
	if err != nil || ws.Len() != 1 {
		t.Fatalf("CommitAt: %v %v", ws, err)
	}
	if db.Version() != 10 {
		t.Fatalf("version = %d", db.Version())
	}
	// CommitAt with a stale version fails.
	tx2 := db.Begin()
	tx2.Write("item", 2, "y")
	if _, err := tx2.CommitAt(10); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale CommitAt: %v", err)
	}
}

func TestWritesetExtraction(t *testing.T) {
	db := newDB(t, "item", "orders")
	tx := db.Begin()
	tx.Write("item", 1, "a")
	tx.Write("orders", 2, "b")
	tx.Write("item", 1, "a2") // overwrite collapses to one entry
	ws := tx.Writeset()
	if ws.Len() != 2 {
		t.Fatalf("writeset = %v", ws)
	}
	if ws.Entries[0].Value != "a2" {
		t.Fatalf("overwrite lost: %v", ws.Entries[0])
	}
	tx.Abort()
}

func TestGCKeepsVisibleVersions(t *testing.T) {
	db := newDB(t, "item")
	for i := 0; i < 5; i++ {
		tx := db.Begin()
		tx.Write("item", 1, fmt.Sprintf("v%d", i))
		mustCommit(t, tx)
	}
	// An old reader pins version 2's visibility horizon.
	old := db.BeginAt(2)
	removed := db.GC()
	if removed == 0 {
		t.Fatal("GC removed nothing")
	}
	v, ok, _ := old.Read("item", 1)
	if !ok || v != "v1" { // commit i wrote version i+1
		t.Fatalf("pinned snapshot read %q %v after GC", v, ok)
	}
	old.Abort()

	// With no active transactions everything but the newest goes.
	db.GC()
	tx := db.Begin()
	v, _, _ = tx.Read("item", 1)
	if v != "v4" {
		t.Fatalf("latest after GC = %q", v)
	}
	tx.Abort()
}

func TestStatsCounting(t *testing.T) {
	db := newDB(t, "item")
	a := db.Begin()
	a.Write("item", 1, "x")
	mustCommit(t, a)
	b := db.Begin()
	b.Write("item", 1, "y")
	c := db.Begin()
	c.Write("item", 1, "z")
	mustCommit(t, b)
	c.Commit() // conflicts
	commits, aborts := db.Stats()
	if commits != 2 || aborts != 1 {
		t.Fatalf("stats = %d commits, %d aborts", commits, aborts)
	}
}

func TestConcurrentCounterNoLostUpdates(t *testing.T) {
	// A classic lost-update check: goroutines increment a counter with
	// retry-on-conflict; the final value must equal the number of
	// successful increments, which must equal the attempts.
	db := newDB(t, "counter")
	seed := db.Begin()
	seed.Write("counter", 1, "0")
	mustCommit(t, seed)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx := db.Begin()
					v, _, err := tx.Read("counter", 1)
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(v, "%d", &n)
					tx.Write("counter", 1, fmt.Sprintf("%d", n+1))
					if _, _, err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, ErrConflict) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	tx := db.Begin()
	v, _, _ := tx.Read("counter", 1)
	tx.Abort()
	want := fmt.Sprintf("%d", workers*perWorker)
	if v != want {
		t.Fatalf("counter = %s, want %s (lost updates!)", v, want)
	}
}

func TestConcurrentDisjointWritersAllCommit(t *testing.T) {
	db := newDB(t, "item")
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := db.Begin()
			tx.Write("item", int64(w), "x")
			if _, _, err := tx.Commit(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("disjoint writer aborted: %v", err)
	}
	n, _ := db.RowCount("item")
	if n != workers {
		t.Fatalf("rows = %d", n)
	}
}

func TestVersionsMonotonic(t *testing.T) {
	db := newDB(t, "item")
	var last int64
	for i := 0; i < 20; i++ {
		tx := db.Begin()
		tx.Write("item", int64(i%3), "v")
		v := mustCommit(t, tx)
		if v <= last {
			t.Fatalf("version went backwards: %d after %d", v, last)
		}
		last = v
	}
}
