// Package app implements realistic e-commerce applications — a TPC-W
// style bookstore and a RUBiS-style auction site — on top of the live
// replicated middleware (internal/repl). The paper motivates its
// models with exactly these workloads (§1, §6.1); this package runs
// their actual transaction logic (stock decrements, order creation,
// bidding, comments) rather than synthetic row touches, and checks
// application-level integrity invariants that only hold if the
// replication protocols provide the isolation they claim:
//
//   - conservation: stock sold equals stock removed, money charged
//     equals order totals;
//   - auction consistency: an item's recorded highest bid equals the
//     maximum over its bid records;
//   - convergence: every replica reports identical application state.
//
// Rows store flat attribute maps encoded as "k=v;k=v" strings, the
// closest row shape the storage engine (one value per row) supports.
package app

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Record is a row's attribute map with integer values (cents,
// quantities, identifiers).
type Record map[string]int64

// Encode renders the record deterministically (sorted keys).
func (r Record) Encode() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r[k]))
	}
	return strings.Join(parts, ";")
}

// DecodeRecord parses a row value produced by Encode.
func DecodeRecord(s string) (Record, error) {
	r := Record{}
	if s == "" {
		return r, nil
	}
	for _, part := range strings.Split(s, ";") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("app: malformed record part %q", part)
		}
		v, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("app: malformed record value %q: %v", part, err)
		}
		r[kv[0]] = v
	}
	return r, nil
}

// Clone copies the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
