package app

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/repl"
	"repro/internal/repl/mm"
	"repro/internal/repl/sm"
)

// systems builds both replicated designs for cross-design tests.
func systems(t *testing.T, replicas int) map[string]struct {
	sys    repl.System
	loader repl.Loader
} {
	t.Helper()
	mmc, err := mm.New(mm.Options{Replicas: replicas, EagerCertification: true})
	if err != nil {
		t.Fatal(err)
	}
	smc, err := sm.New(sm.Options{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		sys    repl.System
		loader repl.Loader
	}{
		"multi-master":  {mmc, mmc},
		"single-master": {smc, smc},
	}
}

func TestRecordCodec(t *testing.T) {
	r := Record{"stock": 10, "price": 599, "sold": 0}
	enc := r.Encode()
	back, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back["stock"] != 10 || back["price"] != 599 {
		t.Fatalf("round trip = %v", back)
	}
	// Deterministic encoding (sorted keys).
	if enc != "price=599;sold=0;stock=10" {
		t.Fatalf("encoding = %q", enc)
	}
	if _, err := DecodeRecord("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeRecord("=1"); err == nil {
		t.Fatal("empty key accepted")
	}
	if empty, err := DecodeRecord(""); err != nil || len(empty) != 0 {
		t.Fatalf("empty decode: %v %v", empty, err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(a, b, c int64) bool {
		r := Record{"a": a, "bb": b, "ccc": c}
		back, err := DecodeRecord(r.Encode())
		if err != nil {
			return false
		}
		return back["a"] == a && back["bb"] == b && back["ccc"] == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTPCWBasicFlow(t *testing.T) {
	for name, s := range systems(t, 3) {
		t.Run(name, func(t *testing.T) {
			shop, err := NewTPCW(s.sys, s.loader, 50)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := shop.ProductDetail(7)
			if err != nil || rec["stock"] != tpcwStockPerItem {
				t.Fatalf("detail: %v %v", rec, err)
			}
			if err := shop.AddToCart(1, 7, 3); err != nil {
				t.Fatal(err)
			}
			orderID, err := shop.BuyConfirm(1)
			if err != nil || orderID == 0 {
				t.Fatalf("buy: %v %v", orderID, err)
			}
			rec, _ = shop.ProductDetail(7)
			if rec["stock"] != tpcwStockPerItem-3 || rec["sold"] != 3 {
				t.Fatalf("stock after buy: %v", rec)
			}
			inv, err := shop.CheckInvariants(0)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Orders != 1 || inv.UnitsSold != 3 {
				t.Fatalf("audit: %+v", inv)
			}
		})
	}
}

func TestTPCWBuyEmptyCartFails(t *testing.T) {
	s := systems(t, 2)["multi-master"]
	shop, err := NewTPCW(s.sys, s.loader, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shop.BuyConfirm(99); err == nil {
		t.Fatal("empty cart purchase succeeded")
	}
}

func TestTPCWOutOfStock(t *testing.T) {
	s := systems(t, 2)["single-master"]
	shop, err := NewTPCW(s.sys, s.loader, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Drain item 0 completely, then one more purchase must fail.
	if err := shop.AddToCart(1, 0, tpcwStockPerItem); err != nil {
		t.Fatal(err)
	}
	if _, err := shop.BuyConfirm(1); err != nil {
		t.Fatal(err)
	}
	if err := shop.AddToCart(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := shop.BuyConfirm(1); !errors.Is(err, ErrOutOfStock) {
		t.Fatalf("overselling allowed: %v", err)
	}
	if _, err := shop.CheckInvariants(0); err != nil {
		t.Fatal(err)
	}
}

func TestTPCWConcurrentConservation(t *testing.T) {
	// The flagship integrity test: concurrent buyers hammer a small
	// catalog on both designs; goods and money conservation must hold
	// exactly on every replica.
	for name, s := range systems(t, 3) {
		t.Run(name, func(t *testing.T) {
			shop, err := NewTPCW(s.sys, s.loader, 8)
			if err != nil {
				t.Fatal(err)
			}
			inv, err := shop.RunMixed(8, 15, 42)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Orders == 0 || inv.UnitsSold == 0 {
				t.Fatalf("no purchases happened: %+v", inv)
			}
		})
	}
}

func TestRUBiSBasicFlow(t *testing.T) {
	for name, s := range systems(t, 3) {
		t.Run(name, func(t *testing.T) {
			site, err := NewRUBiS(s.sys, s.loader, 20, 10)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := site.PlaceBid(3, 1, 500); err != nil {
				t.Fatal(err)
			}
			if _, err := site.PlaceBid(3, 2, 600); err != nil {
				t.Fatal(err)
			}
			// A lower bid is rejected.
			if _, err := site.PlaceBid(3, 1, 550); !errors.Is(err, ErrBidTooLow) {
				t.Fatalf("low bid accepted: %v", err)
			}
			rec, err := site.ViewItem(3)
			if err != nil || rec["maxbid"] != 600 || rec["bids"] != 2 {
				t.Fatalf("item after bids: %v %v", rec, err)
			}
			if err := site.StoreComment(5, 2); err != nil {
				t.Fatal(err)
			}
			inv, err := site.CheckInvariants(0)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Bids != 2 || inv.Comments != 1 || inv.Ratings != 2 {
				t.Fatalf("audit: %+v", inv)
			}
		})
	}
}

func TestRUBiSConcurrentAuctionConsistency(t *testing.T) {
	for name, s := range systems(t, 3) {
		t.Run(name, func(t *testing.T) {
			site, err := NewRUBiS(s.sys, s.loader, 5, 6)
			if err != nil {
				t.Fatal(err)
			}
			inv, err := site.RunMixed(6, 20, 17)
			if err != nil {
				t.Fatal(err)
			}
			if inv.Bids == 0 {
				t.Fatalf("no bids landed: %+v", inv)
			}
		})
	}
}

func TestRUBiSBuyNowNeverOversells(t *testing.T) {
	s := systems(t, 2)["multi-master"]
	site, err := NewRUBiS(s.sys, s.loader, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 clients each try to buy 5 units of a 10-unit item: exactly 10
	// must succeed.
	done := make(chan int, 4)
	for c := 0; c < 4; c++ {
		go func() {
			bought := 0
			for i := 0; i < 5; i++ {
				err := site.BuyNow(0, int64(i))
				if err == nil {
					bought++
				} else if !errors.Is(err, ErrOutOfStock) {
					t.Errorf("unexpected: %v", err)
				}
			}
			done <- bought
		}()
	}
	total := 0
	for c := 0; c < 4; c++ {
		total += <-done
	}
	if total != 10 {
		t.Fatalf("sold %d units of 10", total)
	}
	rec, err := site.ViewItem(0)
	if err != nil || rec["quantity"] != 0 {
		t.Fatalf("final quantity: %v %v", rec, err)
	}
	if _, err := site.CheckInvariants(0); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	s := systems(t, 1)["multi-master"]
	if _, err := NewTPCW(s.sys, s.loader, 0); err == nil {
		t.Fatal("zero items accepted")
	}
	if _, err := NewRUBiS(s.sys, s.loader, 0, 5); err == nil {
		t.Fatal("zero items accepted")
	}
}
