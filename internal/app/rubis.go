package app

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/repl"
	"repro/internal/stats"
)

// RUBiS drives the auction application against a replicated system.
type RUBiS struct {
	sys   repl.System
	items int
	users int

	nextBid     atomic.Int64
	nextComment atomic.Int64
}

// RUBiS application tables.
const (
	rubisItems    = "items"
	rubisUsers    = "users"
	rubisBids     = "bids"
	rubisComments = "comments"
)

// NewRUBiS creates the schema and loads items (each with a reserve
// price and zero bids) and users (zero rating).
func NewRUBiS(sys repl.System, loader repl.Loader, items, users int) (*RUBiS, error) {
	if items <= 0 || users <= 0 {
		return nil, fmt.Errorf("app: rubis needs items and users")
	}
	for _, table := range []string{rubisItems, rubisUsers, rubisBids, rubisComments} {
		if err := loader.CreateTable(table); err != nil {
			return nil, err
		}
	}
	if err := loader.Load(rubisItems, items, func(i int64) string {
		return Record{"reserve": 100 + i%900, "maxbid": 0, "bids": 0, "quantity": 10}.Encode()
	}); err != nil {
		return nil, err
	}
	if err := loader.Load(rubisUsers, users, func(i int64) string {
		return Record{"rating": 0, "comments": 0}.Encode()
	}); err != nil {
		return nil, err
	}
	return &RUBiS{sys: sys, items: items, users: users}, nil
}

// ViewItem reads one item (read-only interaction).
func (r *RUBiS) ViewItem(item int64) (Record, error) {
	tx, err := r.sys.BeginRead()
	if err != nil {
		return nil, err
	}
	rec, ok, err := readRecord(tx, rubisItems, item)
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = fmt.Errorf("app: item %d missing", item)
		}
		return nil, err
	}
	return rec, tx.Commit()
}

// ErrBidTooLow reports a bid at or below the item's current maximum.
var ErrBidTooLow = errors.New("app: bid below current maximum")

// PlaceBid records a bid: insert the bid row and raise the item's
// maxbid/bids counters in one transaction. Concurrent bids on the same
// item conflict on the item row, so first-committer-wins serializes
// them and the maxbid invariant (item.maxbid == max over bids) holds.
func (r *RUBiS) PlaceBid(item, user, amount int64) (bidID int64, err error) {
	err = r.retry(func(tx repl.Txn) error {
		rec, ok, err := readRecord(tx, rubisItems, item)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("app: item %d missing", item)
			}
			return err
		}
		if amount <= rec["maxbid"] {
			return ErrBidTooLow
		}
		rec["maxbid"] = amount
		rec["bids"]++
		if err := writeRecord(tx, rubisItems, item, rec); err != nil {
			return err
		}
		bidID = r.nextBid.Add(1)
		return writeRecord(tx, rubisBids, bidID,
			Record{"item": item, "user": user, "amount": amount})
	})
	return bidID, err
}

// BuyNow purchases one unit of the item, never driving quantity
// negative.
func (r *RUBiS) BuyNow(item, user int64) error {
	return r.retry(func(tx repl.Txn) error {
		rec, ok, err := readRecord(tx, rubisItems, item)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("app: item %d missing", item)
			}
			return err
		}
		if rec["quantity"] <= 0 {
			return ErrOutOfStock
		}
		rec["quantity"]--
		return writeRecord(tx, rubisItems, item, rec)
	})
}

// StoreComment records a comment about a user and adjusts the user's
// rating in one transaction (rating conservation: a user's rating is
// the sum of comment ratings about them).
func (r *RUBiS) StoreComment(about int64, rating int64) error {
	return r.retry(func(tx repl.Txn) error {
		rec, ok, err := readRecord(tx, rubisUsers, about)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("app: user %d missing", about)
			}
			return err
		}
		rec["rating"] += rating
		rec["comments"]++
		if err := writeRecord(tx, rubisUsers, about, rec); err != nil {
			return err
		}
		id := r.nextComment.Add(1)
		return writeRecord(tx, rubisComments, id,
			Record{"about": about, "rating": rating})
	})
}

// retry mirrors TPCW.retry for the auction application.
func (r *RUBiS) retry(body func(tx repl.Txn) error) error {
	for {
		tx, err := r.sys.BeginUpdate()
		if err != nil {
			return err
		}
		if err := body(tx); err != nil {
			tx.Abort()
			if errors.Is(err, repl.ErrAborted) {
				continue
			}
			return err
		}
		switch err := tx.Commit(); {
		case err == nil:
			return nil
		case errors.Is(err, repl.ErrAborted):
			// fresh snapshot, retry
		default:
			return err
		}
	}
}

// RUBiSInvariants summarizes an integrity audit of one replica.
type RUBiSInvariants struct {
	Items    int
	Bids     int
	Comments int
	MaxBids  int64 // sum over items of maxbid (fingerprint for convergence)
	Ratings  int64 // sum over users of rating
}

// CheckInvariants audits replica idx:
//
//  1. every item's maxbid equals the maximum amount among its bids
//     (zero when it has none) and its bids counter matches;
//  2. every user's rating equals the sum of comment ratings about
//     them, and the comment counters match;
//  3. item quantities are non-negative.
func (r *RUBiS) CheckInvariants(idx int) (RUBiSInvariants, error) {
	var inv RUBiSInvariants
	r.sys.Sync()

	items, err := r.sys.TableDump(idx, rubisItems)
	if err != nil {
		return inv, err
	}
	bids, err := r.sys.TableDump(idx, rubisBids)
	if err != nil {
		return inv, err
	}
	inv.Items, inv.Bids = len(items), len(bids)

	maxBid := map[int64]int64{}
	bidCount := map[int64]int64{}
	for id, v := range bids {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("bid %d: %w", id, err)
		}
		item := rec["item"]
		bidCount[item]++
		if rec["amount"] > maxBid[item] {
			maxBid[item] = rec["amount"]
		}
	}
	for id, v := range items {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("item %d: %w", id, err)
		}
		if rec["quantity"] < 0 {
			return inv, fmt.Errorf("item %d: negative quantity", id)
		}
		if rec["maxbid"] != maxBid[id] {
			return inv, fmt.Errorf("item %d: maxbid %d but bid records say %d",
				id, rec["maxbid"], maxBid[id])
		}
		if rec["bids"] != bidCount[id] {
			return inv, fmt.Errorf("item %d: bids counter %d but %d bid records",
				id, rec["bids"], bidCount[id])
		}
		inv.MaxBids += rec["maxbid"]
	}

	users, err := r.sys.TableDump(idx, rubisUsers)
	if err != nil {
		return inv, err
	}
	comments, err := r.sys.TableDump(idx, rubisComments)
	if err != nil {
		return inv, err
	}
	inv.Comments = len(comments)
	ratingSum := map[int64]int64{}
	commentCount := map[int64]int64{}
	for id, v := range comments {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("comment %d: %w", id, err)
		}
		ratingSum[rec["about"]] += rec["rating"]
		commentCount[rec["about"]]++
	}
	for id, v := range users {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("user %d: %w", id, err)
		}
		if rec["rating"] != ratingSum[id] {
			return inv, fmt.Errorf("user %d: rating %d but comments sum to %d",
				id, rec["rating"], ratingSum[id])
		}
		if rec["comments"] != commentCount[id] {
			return inv, fmt.Errorf("user %d: comment counter mismatch", id)
		}
		inv.Ratings += rec["rating"]
	}
	return inv, nil
}

// RunMixed drives concurrent bidders and audits all replicas,
// returning the replica-0 audit.
func (r *RUBiS) RunMixed(clients, cyclesPerClient int, seed uint64) (RUBiSInvariants, error) {
	root := stats.NewRand(seed)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		rng := root.Split()
		user := int64(c % r.users)
		go func() {
			for i := 0; i < cyclesPerClient; i++ {
				item := int64(rng.Intn(r.items))
				rec, err := r.ViewItem(item)
				if err != nil {
					errs <- err
					return
				}
				if _, err := r.PlaceBid(item, user, rec["maxbid"]+1+int64(rng.Intn(50))); err != nil &&
					!errors.Is(err, ErrBidTooLow) {
					errs <- err
					return
				}
				if rng.Bernoulli(0.3) {
					if err := r.BuyNow(item, user); err != nil && !errors.Is(err, ErrOutOfStock) {
						errs <- err
						return
					}
				}
				if rng.Bernoulli(0.3) {
					if err := r.StoreComment(int64(rng.Intn(r.users)), int64(rng.Intn(5))-2); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			return RUBiSInvariants{}, err
		}
	}

	ref, err := r.CheckInvariants(0)
	if err != nil {
		return ref, err
	}
	for idx := 1; idx < r.sys.Replicas(); idx++ {
		got, err := r.CheckInvariants(idx)
		if err != nil {
			return ref, fmt.Errorf("replica %d: %w", idx, err)
		}
		if got != ref {
			return ref, fmt.Errorf("replica %d diverged: %+v vs %+v", idx, got, ref)
		}
	}
	return ref, nil
}
