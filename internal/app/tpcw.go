package app

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/repl"
	"repro/internal/stats"
)

// TPCW drives the bookstore application against a replicated system.
// All money amounts are cents; ids are dense integers.
type TPCW struct {
	sys   repl.System
	items int

	initialStock int64 // per item, fixed at load time

	nextOrder atomic.Int64
}

// TPC-W application tables.
const (
	tpcwItems      = "item"
	tpcwOrders     = "orders"
	tpcwOrderLines = "order_line"
	tpcwCarts      = "cart"
)

// tpcwStockPerItem is the initial stock quantity of every item.
const tpcwStockPerItem = 1000

// NewTPCW creates the schema on sys (via its Loader side) and loads
// items with deterministic stock and price. items is the catalog size
// (the standard scale is 10,000; tests shrink it).
func NewTPCW(sys repl.System, loader repl.Loader, items int) (*TPCW, error) {
	if items <= 0 {
		return nil, fmt.Errorf("app: %d items", items)
	}
	for _, table := range []string{tpcwItems, tpcwOrders, tpcwOrderLines, tpcwCarts} {
		if err := loader.CreateTable(table); err != nil {
			return nil, err
		}
	}
	err := loader.Load(tpcwItems, items, func(i int64) string {
		return Record{"stock": tpcwStockPerItem, "price": 500 + i%5000, "sold": 0}.Encode()
	})
	if err != nil {
		return nil, err
	}
	return &TPCW{sys: sys, items: items, initialStock: tpcwStockPerItem}, nil
}

// readRecord fetches and decodes one row inside tx.
func readRecord(tx repl.Txn, table string, row int64) (Record, bool, error) {
	v, ok, err := tx.Read(table, row)
	if err != nil || !ok {
		return nil, ok, err
	}
	r, err := DecodeRecord(v)
	return r, true, err
}

// writeRecord encodes and writes one row inside tx.
func writeRecord(tx repl.Txn, table string, row int64, r Record) error {
	return tx.Write(table, row, r.Encode())
}

// ProductDetail reads one item's attributes (read-only interaction).
func (t *TPCW) ProductDetail(item int64) (Record, error) {
	tx, err := t.sys.BeginRead()
	if err != nil {
		return nil, err
	}
	rec, ok, err := readRecord(tx, tpcwItems, item)
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = fmt.Errorf("app: item %d missing", item)
		}
		return nil, err
	}
	return rec, tx.Commit()
}

// BestSellers scans a window of items and returns the id with the
// highest sold count (read-only interaction touching many rows).
func (t *TPCW) BestSellers(from, count int) (int64, error) {
	tx, err := t.sys.BeginRead()
	if err != nil {
		return 0, err
	}
	defer tx.Abort()
	best, bestSold := int64(-1), int64(-1)
	for i := 0; i < count; i++ {
		id := int64((from + i) % t.items)
		rec, ok, err := readRecord(tx, tpcwItems, id)
		if err != nil {
			return 0, err
		}
		if ok && rec["sold"] > bestSold {
			best, bestSold = id, rec["sold"]
		}
	}
	return best, tx.Commit()
}

// AddToCart replaces the cart's content with (item, qty). Carts are
// single-row documents keyed by cart id.
func (t *TPCW) AddToCart(cart, item int64, qty int64) error {
	if qty <= 0 {
		return fmt.Errorf("app: non-positive quantity %d", qty)
	}
	return t.retry(func(tx repl.Txn) error {
		return writeRecord(tx, tpcwCarts, cart, Record{"item": item, "qty": qty})
	})
}

// ErrOutOfStock reports a purchase that would drive stock negative;
// the transaction is rolled back.
var ErrOutOfStock = errors.New("app: out of stock")

// BuyConfirm turns a cart into an order: read the cart, decrement the
// item's stock (never below zero), record the sale, create the order
// and its order line, and empty the cart — all in one transaction, so
// under snapshot isolation the stock conservation invariant holds
// exactly despite concurrent buyers.
func (t *TPCW) BuyConfirm(cart int64) (orderID int64, err error) {
	err = t.retry(func(tx repl.Txn) error {
		cartRec, ok, err := readRecord(tx, tpcwCarts, cart)
		if err != nil {
			return err
		}
		if !ok || cartRec["qty"] == 0 {
			return fmt.Errorf("app: cart %d empty", cart)
		}
		item, qty := cartRec["item"], cartRec["qty"]
		itemRec, ok, err := readRecord(tx, tpcwItems, item)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("app: item %d missing", item)
			}
			return err
		}
		if itemRec["stock"] < qty {
			return ErrOutOfStock
		}
		itemRec["stock"] -= qty
		itemRec["sold"] += qty
		if err := writeRecord(tx, tpcwItems, item, itemRec); err != nil {
			return err
		}
		orderID = t.nextOrder.Add(1)
		total := qty * itemRec["price"]
		if err := writeRecord(tx, tpcwOrders, orderID, Record{"total": total, "lines": 1}); err != nil {
			return err
		}
		line := Record{"order": orderID, "item": item, "qty": qty, "amount": total}
		if err := writeRecord(tx, tpcwOrderLines, orderID, line); err != nil {
			return err
		}
		return tx.Delete(tpcwCarts, cart)
	})
	return orderID, err
}

// AdminUpdate changes an item's price (update interaction).
func (t *TPCW) AdminUpdate(item int64, price int64) error {
	return t.retry(func(tx repl.Txn) error {
		rec, ok, err := readRecord(tx, tpcwItems, item)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("app: item %d missing", item)
			}
			return err
		}
		rec["price"] = price
		return writeRecord(tx, tpcwItems, item, rec)
	})
}

// retry runs body in an update transaction, retrying certification
// aborts with a fresh snapshot (the servlet behaviour, §6.1).
// Application-level failures (e.g. ErrOutOfStock) abort and return.
func (t *TPCW) retry(body func(tx repl.Txn) error) error {
	for {
		tx, err := t.sys.BeginUpdate()
		if err != nil {
			return err
		}
		if err := body(tx); err != nil {
			tx.Abort()
			if errors.Is(err, repl.ErrAborted) {
				continue // eager certification killed it; retry
			}
			return err
		}
		switch err := tx.Commit(); {
		case err == nil:
			return nil
		case errors.Is(err, repl.ErrAborted):
			// Retry with a fresh snapshot.
		default:
			return err
		}
	}
}

// TPCWInvariants summarizes an integrity audit of one replica.
type TPCWInvariants struct {
	Items       int
	Orders      int
	UnitsSold   int64
	StockMoved  int64
	OrderTotal  int64
	LineAmounts int64
}

// CheckInvariants audits replica r's application state:
//
//  1. conservation of goods: initial stock minus remaining stock
//     equals recorded sold units equals units across order lines;
//  2. conservation of money: order totals equal the sum of their
//     lines' amounts;
//  3. no negative stock anywhere.
func (t *TPCW) CheckInvariants(replica int) (TPCWInvariants, error) {
	var inv TPCWInvariants
	t.sys.Sync()

	items, err := t.sys.TableDump(replica, tpcwItems)
	if err != nil {
		return inv, err
	}
	inv.Items = len(items)
	var remaining, sold int64
	for id, v := range items {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("item %d: %w", id, err)
		}
		if rec["stock"] < 0 {
			return inv, fmt.Errorf("item %d: negative stock %d", id, rec["stock"])
		}
		remaining += rec["stock"]
		sold += rec["sold"]
	}
	inv.UnitsSold = sold
	inv.StockMoved = int64(len(items))*t.initialStock - remaining

	orders, err := t.sys.TableDump(replica, tpcwOrders)
	if err != nil {
		return inv, err
	}
	lines, err := t.sys.TableDump(replica, tpcwOrderLines)
	if err != nil {
		return inv, err
	}
	inv.Orders = len(orders)
	var lineUnits int64
	for id, v := range orders {
		rec, err := DecodeRecord(v)
		if err != nil {
			return inv, fmt.Errorf("order %d: %w", id, err)
		}
		inv.OrderTotal += rec["total"]
		lv, ok := lines[id]
		if !ok {
			return inv, fmt.Errorf("order %d has no order line", id)
		}
		line, err := DecodeRecord(lv)
		if err != nil {
			return inv, fmt.Errorf("order line %d: %w", id, err)
		}
		inv.LineAmounts += line["amount"]
		lineUnits += line["qty"]
	}
	if len(lines) != len(orders) {
		return inv, fmt.Errorf("%d order lines for %d orders", len(lines), len(orders))
	}

	if inv.StockMoved != inv.UnitsSold {
		return inv, fmt.Errorf("goods conservation violated: stock moved %d, sold %d",
			inv.StockMoved, inv.UnitsSold)
	}
	if inv.UnitsSold != lineUnits {
		return inv, fmt.Errorf("goods conservation violated: sold %d, order-line units %d",
			inv.UnitsSold, lineUnits)
	}
	if inv.OrderTotal != inv.LineAmounts {
		return inv, fmt.Errorf("money conservation violated: orders %d, lines %d",
			inv.OrderTotal, inv.LineAmounts)
	}
	return inv, nil
}

// RunMixed drives clients concurrent shoppers, each performing cycles
// of browse / cart / buy / admin interactions, then audits every
// replica and checks cross-replica convergence. It returns the
// replica-0 audit.
func (t *TPCW) RunMixed(clients, cyclesPerClient int, seed uint64) (TPCWInvariants, error) {
	root := stats.NewRand(seed)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		rng := root.Split()
		cart := int64(c + 1)
		go func() {
			for i := 0; i < cyclesPerClient; i++ {
				item := int64(rng.Intn(t.items))
				if _, err := t.ProductDetail(item); err != nil {
					errs <- err
					return
				}
				if _, err := t.BestSellers(rng.Intn(t.items), 10); err != nil {
					errs <- err
					return
				}
				if err := t.AddToCart(cart, item, 1+int64(rng.Intn(3))); err != nil {
					errs <- err
					return
				}
				if _, err := t.BuyConfirm(cart); err != nil && !errors.Is(err, ErrOutOfStock) {
					errs <- err
					return
				}
				if rng.Bernoulli(0.2) {
					if err := t.AdminUpdate(item, 100+int64(rng.Intn(10000))); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			return TPCWInvariants{}, err
		}
	}

	ref, err := t.CheckInvariants(0)
	if err != nil {
		return ref, err
	}
	for r := 1; r < t.sys.Replicas(); r++ {
		got, err := t.CheckInvariants(r)
		if err != nil {
			return ref, fmt.Errorf("replica %d: %w", r, err)
		}
		if got != ref {
			return ref, fmt.Errorf("replica %d diverged: %+v vs %+v", r, got, ref)
		}
	}
	return ref, nil
}
