package cluster

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// short returns a config with reduced windows to keep tests fast while
// staying statistically stable.
func short(m workload.Mix, d core.Design, n int) Config {
	return Config{Mix: m, Design: d, Replicas: n, Seed: 1234, Warmup: 20, Measure: 80}
}

func TestStandaloneMatchesModel(t *testing.T) {
	for _, m := range workload.All() {
		res, err := Run(short(m, core.Standalone, 1))
		if err != nil {
			t.Fatalf("%s: %v", m.ID(), err)
		}
		want := core.PredictStandalone(core.NewParams(m))
		if e := stats.RelativeError(res.Throughput, want.Throughput); e > 0.10 {
			t.Errorf("%s: measured X=%.1f vs model %.1f (err %.0f%%)",
				m.ID(), res.Throughput, want.Throughput, e*100)
		}
	}
}

func TestMMThroughputWithinPaperMargin(t *testing.T) {
	// The paper reports model-vs-measurement error below 15% across
	// mixes and replica counts (§6.2.1).
	for _, m := range workload.AllTPCW() {
		p := core.NewParams(m)
		for _, n := range []int{1, 4, 8, 16} {
			res, err := Run(short(m, core.MultiMaster, n))
			if err != nil {
				t.Fatalf("%s N=%d: %v", m.ID(), n, err)
			}
			pred := core.PredictMM(p, n)
			if e := stats.RelativeError(pred.Throughput, res.Throughput); e > 0.15 {
				t.Errorf("%s N=%d: predicted %.1f vs measured %.1f tps (err %.0f%%)",
					m.ID(), n, pred.Throughput, res.Throughput, e*100)
			}
		}
	}
}

func TestSMThroughputWithinPaperMargin(t *testing.T) {
	for _, m := range workload.AllTPCW() {
		p := core.NewParams(m)
		for _, n := range []int{1, 4, 8, 16} {
			res, err := Run(short(m, core.SingleMaster, n))
			if err != nil {
				t.Fatalf("%s N=%d: %v", m.ID(), n, err)
			}
			pred := core.PredictSM(p, n)
			if e := stats.RelativeError(pred.Throughput, res.Throughput); e > 0.15 {
				t.Errorf("%s N=%d: predicted %.1f vs measured %.1f tps (err %.0f%%)",
					m.ID(), n, pred.Throughput, res.Throughput, e*100)
			}
		}
	}
}

func TestRUBiSWithinPaperMargin(t *testing.T) {
	for _, m := range workload.AllRUBiS() {
		p := core.NewParams(m)
		for _, design := range []core.Design{core.MultiMaster, core.SingleMaster} {
			for _, n := range []int{1, 6, 16} {
				res, err := Run(short(m, design, n))
				if err != nil {
					t.Fatalf("%s %s N=%d: %v", m.ID(), design, n, err)
				}
				var pred core.Prediction
				if design == core.MultiMaster {
					pred = core.PredictMM(p, n)
				} else {
					pred = core.PredictSM(p, n)
				}
				if e := stats.RelativeError(pred.Throughput, res.Throughput); e > 0.15 {
					t.Errorf("%s %s N=%d: predicted %.1f vs measured %.1f (err %.0f%%)",
						m.ID(), design, n, pred.Throughput, res.Throughput, e*100)
				}
			}
		}
	}
}

func TestResponseTimeWithinMargin(t *testing.T) {
	// Response-time prediction for the main workload (shopping mix).
	m := workload.TPCWShopping()
	p := core.NewParams(m)
	for _, n := range []int{1, 8, 16} {
		res, err := Run(short(m, core.MultiMaster, n))
		if err != nil {
			t.Fatal(err)
		}
		pred := core.PredictMM(p, n)
		if e := stats.RelativeError(pred.ResponseTime, res.ResponseTime); e > 0.20 {
			t.Errorf("N=%d: predicted RT %.0fms vs measured %.0fms (err %.0f%%)",
				n, pred.ResponseTime*1000, res.ResponseTime*1000, e*100)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := short(workload.TPCWShopping(), core.MultiMaster, 4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Commits != b.Commits || a.ResponseTime != b.ResponseTime {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRunButNotMuch(t *testing.T) {
	cfg := short(workload.TPCWShopping(), core.MultiMaster, 2)
	a, _ := Run(cfg)
	cfg.Seed = 999
	b, _ := Run(cfg)
	if a.Commits == b.Commits {
		t.Error("different seeds produced identical commit counts (suspicious)")
	}
	if stats.RelativeError(a.Throughput, b.Throughput) > 0.05 {
		t.Errorf("throughput unstable across seeds: %.1f vs %.1f", a.Throughput, b.Throughput)
	}
}

func TestReadsNeverAbort(t *testing.T) {
	m := workload.RUBiSBrowsing()
	res, err := Run(short(m, core.MultiMaster, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateAborts != 0 || res.AbortRate != 0 {
		t.Errorf("read-only workload aborted: %+v", res)
	}
	if res.WriteThroughput != 0 {
		t.Errorf("read-only workload committed updates: %v", res.WriteThroughput)
	}
}

func TestSMMasterExecutesAllUpdates(t *testing.T) {
	m := workload.TPCWOrdering()
	res, err := Run(short(m, core.SingleMaster, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Slaves apply writesets; only the master commits updates, so every
	// slave's writeset count must equal the system's update commits.
	for _, n := range res.Nodes[1:] {
		diff := math.Abs(float64(n.Writesets - res.UpdateCommits))
		// Writesets still in flight at the window edges allow slack.
		if diff > 0.01*float64(res.UpdateCommits)+50 {
			t.Errorf("slave %s applied %d writesets, updates committed %d",
				n.Name, n.Writesets, res.UpdateCommits)
		}
	}
}

func TestMMWritesetFanout(t *testing.T) {
	m := workload.TPCWOrdering()
	n := 4
	res, err := Run(short(m, core.MultiMaster, n))
	if err != nil {
		t.Fatal(err)
	}
	var applied int64
	for _, node := range res.Nodes {
		applied += node.Writesets
	}
	want := res.UpdateCommits * int64(n-1)
	if math.Abs(float64(applied-want)) > 0.02*float64(want)+100 {
		t.Errorf("applied %d writesets, want about %d ((N-1) per commit)", applied, want)
	}
}

func TestUtilizationLawHolds(t *testing.T) {
	// Measured station utilization must match X * D within tolerance,
	// tying the simulator to the model's Utilization Law (§4.1.1).
	m := workload.RUBiSBrowsing()
	res, err := Run(short(m, core.MultiMaster, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range res.Nodes {
		wantCPU := node.Throughput * m.RC[workload.CPU]
		if stats.RelativeError(node.UtilCPU, wantCPU) > 0.10 {
			t.Errorf("%s: util CPU %.3f vs utilization law %.3f", node.Name, node.UtilCPU, wantCPU)
		}
	}
}

func TestHeapTableRaisesAborts(t *testing.T) {
	// Shrinking the updatable-row pool must raise the abort rate
	// (the Figure 14 mechanism).
	m := workload.TPCWShopping()
	big, err := Run(short(m, core.MultiMaster, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := short(m, core.MultiMaster, 8)
	cfg.HeapTableSize = 2000
	small, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.AbortRate <= big.AbortRate {
		t.Errorf("small heap table did not raise aborts: %.4f vs %.4f",
			small.AbortRate, big.AbortRate)
	}
	if small.Retries == 0 {
		t.Error("aborted transactions were not retried")
	}
}

func TestAbortRateGrowsWithReplicas(t *testing.T) {
	m := workload.TPCWShopping()
	rates := make([]float64, 0, 3)
	for _, n := range []int{1, 8, 16} {
		cfg := short(m, core.MultiMaster, n)
		cfg.HeapTableSize = 5000 // force measurable aborts
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, res.AbortRate)
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("abort rate not increasing with replicas: %v", rates)
	}
}

func TestSnapshotLagGrowsWithReplicas(t *testing.T) {
	m := workload.TPCWOrdering()
	small, _ := Run(short(m, core.MultiMaster, 2))
	large, _ := Run(short(m, core.MultiMaster, 16))
	if large.AvgSnapshotLag <= small.AvgSnapshotLag {
		t.Errorf("snapshot staleness did not grow: %.2f vs %.2f",
			small.AvgSnapshotLag, large.AvgSnapshotLag)
	}
}

func TestConfigValidation(t *testing.T) {
	m := workload.TPCWShopping()
	cases := []Config{
		{Mix: m, Design: core.MultiMaster, Replicas: -1},
		{Mix: m, Design: core.Standalone, Replicas: 4},
		{Mix: m, Design: core.MultiMaster, Replicas: 2, Measure: -5, Warmup: 1},
		{Mix: workload.Mix{Pr: 2, Pw: -1}, Design: core.MultiMaster, Replicas: 2},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{Mix: workload.TPCWShopping(), Design: core.MultiMaster}
	got := cfg.withDefaults()
	if got.Replicas != 1 || got.Warmup == 0 || got.Measure == 0 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if got.LBDelay != core.DefaultLBDelay || got.CertDelay != core.DefaultCertDelay {
		t.Errorf("middleware delays not defaulted: %+v", got)
	}
	if got.HeapTableSize != got.Mix.DBUpdateSize {
		t.Errorf("heap table default: %+v", got)
	}
	sa := Config{Mix: workload.TPCWShopping(), Design: core.Standalone}.withDefaults()
	if sa.LBDelay != 0 || sa.CertDelay != 0 {
		t.Errorf("standalone should have no middleware delays: %+v", sa)
	}
}

func TestThroughputSplitConsistent(t *testing.T) {
	res, err := Run(short(workload.TPCWShopping(), core.MultiMaster, 4))
	if err != nil {
		t.Fatal(err)
	}
	sum := res.ReadThroughput + res.WriteThroughput
	if math.Abs(sum-res.Throughput) > 1e-9 {
		t.Errorf("read+write %v != total %v", sum, res.Throughput)
	}
	ratio := res.WriteThroughput / res.Throughput
	if math.Abs(ratio-workload.TPCWShopping().Pw) > 0.02 {
		t.Errorf("committed write fraction %.3f, want about %.2f", ratio, workload.TPCWShopping().Pw)
	}
}

func TestResponseCIIsTight(t *testing.T) {
	res, err := Run(short(workload.TPCWShopping(), core.MultiMaster, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseCI95 <= 0 {
		t.Fatal("no confidence interval")
	}
	if res.ResponseCI95 > 0.10*res.ResponseTime {
		t.Errorf("CI95 %.1fms too wide for RT %.1fms", res.ResponseCI95*1000, res.ResponseTime*1000)
	}
}

func TestResponsePercentilesOrdered(t *testing.T) {
	res, err := Run(short(workload.TPCWShopping(), core.MultiMaster, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.ResponseP50 > 0 && res.ResponseP50 <= res.ResponseP95 && res.ResponseP95 <= res.ResponseP99) {
		t.Fatalf("percentiles disordered: p50=%v p95=%v p99=%v",
			res.ResponseP50, res.ResponseP95, res.ResponseP99)
	}
	// The median of a right-skewed response distribution sits below
	// the mean; the p99 above it.
	if res.ResponseP50 > res.ResponseTime {
		t.Errorf("p50 %v above mean %v", res.ResponseP50, res.ResponseTime)
	}
	if res.ResponseP99 < res.ResponseTime {
		t.Errorf("p99 %v below mean %v", res.ResponseP99, res.ResponseTime)
	}
}

func TestSMMasterRoleMatchesModel(t *testing.T) {
	// Per-role validation: the simulated SM master's utilization must
	// match the model's Master role metrics, not just system totals.
	m := workload.TPCWOrdering()
	res, err := Run(short(m, core.SingleMaster, 8))
	if err != nil {
		t.Fatal(err)
	}
	pred := core.PredictSM(core.NewParams(m), 8)
	master := res.Nodes[0]
	if e := stats.RelativeError(pred.Master.UtilCPU, master.UtilCPU); e > 0.15 {
		t.Errorf("master CPU util: predicted %.2f vs measured %.2f (err %.0f%%)",
			pred.Master.UtilCPU, master.UtilCPU, e*100)
	}
	// The ordering master saturates; both must agree it is pinned.
	if master.UtilCPU < 0.9 {
		t.Errorf("measured master CPU %.2f, expected saturation", master.UtilCPU)
	}
}

func TestMMReplicaUtilizationMatchesModel(t *testing.T) {
	m := workload.TPCWShopping()
	res, err := Run(short(m, core.MultiMaster, 8))
	if err != nil {
		t.Fatal(err)
	}
	pred := core.PredictMM(core.NewParams(m), 8)
	for _, node := range res.Nodes {
		if e := stats.RelativeError(pred.Replica.UtilCPU, node.UtilCPU); e > 0.15 {
			t.Errorf("%s: CPU util predicted %.2f vs measured %.2f", node.Name, pred.Replica.UtilCPU, node.UtilCPU)
		}
		if e := stats.RelativeError(pred.Replica.UtilDisk, node.UtilDisk); e > 0.15 {
			t.Errorf("%s: disk util predicted %.2f vs measured %.2f", node.Name, pred.Replica.UtilDisk, node.UtilDisk)
		}
	}
}
