// Package cluster simulates the paper's prototype systems: a
// standalone database, the Tashkent-style multi-master system and the
// Ganymed-style single-master system (§5), running the TPC-W and
// RUBiS workload mixes on a cluster of replicas.
//
// This is the "measured system" side of the paper's validation: the
// authors ran PostgreSQL on a 16-machine cluster; this package runs a
// discrete-event simulation in which each replica is a CPU and a disk
// FIFO station with exponentially distributed demands calibrated by
// the measured service demands of Tables 3 and 5. Closed-loop clients
// submit transactions with exponential think times; the load balancer
// and the certifier contribute the delays measured in §6.3. Update
// transactions sample the rows they modify from an updatable-row pool,
// and write-write conflicts are detected against a global last-writer
// table exactly as first-committer-wins snapshot isolation would —
// aborted transactions are retried by their client, as the paper's
// servlets do.
//
// Because conflicts are driven by actual row overlap and snapshot
// staleness (replicas learn of remote commits only when the writeset
// is applied), the simulation reproduces the abort dynamics the model
// predicts analytically, including the Figure 14 heap-table
// experiments.
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one simulated experiment run.
type Config struct {
	Mix      workload.Mix
	Design   core.Design
	Replicas int
	Seed     uint64

	// Warmup and Measure are the virtual-time windows (seconds). The
	// paper uses 10 min + 15 min on real hardware; the simulation
	// defaults to 30 s + 150 s, which give tight confidence intervals
	// at these throughputs.
	Warmup  float64
	Measure float64

	// LBDelay and CertDelay default to the paper's 1 ms and 12 ms.
	LBDelay   float64
	CertDelay float64

	// CertBatch models group commit at the certifier: the certifier
	// logs writesets in batches (§6.3), so with a batch factor of B
	// the per-request share of the certification delay shrinks to
	// CertDelay/B. Zero or one keeps the paper's per-request delay;
	// the knob exists for what-if studies of a batching certifier and
	// matches the functional repl/mm GroupCommit option.
	CertBatch int

	// HeapTableSize overrides the mix's DBUpdateSize row pool, used by
	// the Figure 14 experiments to force high abort rates. Zero keeps
	// the mix value.
	HeapTableSize int

	// HotspotTheta skews the rows update transactions touch with a
	// Zipf(theta) distribution over the row pool. Zero keeps the
	// paper's uniform-access assumption (§3.4 assumption 4); positive
	// values create the hotspot that assumption rules out, for the
	// sensitivity study.
	HotspotTheta float64

	// OpenLoopRate switches the workload from the paper's closed-loop
	// clients (§3.1) to an open Poisson arrival stream of the given
	// transactions/second. Used only by the open-vs-closed ablation
	// (Schroeder et al., NSDI 2006, cited in §3.1); zero means closed
	// loop.
	OpenLoopRate float64

	// MasterSpeedup scales the single-master master's machine speed:
	// its service demands are divided by this factor (zero or one =
	// homogeneous cluster). Models the paper's §6.2.1 suggestion of a
	// more powerful master.
	MasterSpeedup float64

	// FIFO switches the replica stations from processor sharing (the
	// default, matching the time-shared database server and the MVA
	// product-form assumptions) to FIFO queues. Kept as an ablation:
	// FIFO distorts per-class response times because cheap update
	// transactions wait behind expensive reads.
	FIFO bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 30
	}
	if c.Measure == 0 {
		c.Measure = 150
	}
	if c.LBDelay == 0 && c.Design != core.Standalone {
		c.LBDelay = core.DefaultLBDelay
	}
	if c.CertDelay == 0 && c.Design == core.MultiMaster {
		c.CertDelay = core.DefaultCertDelay
	}
	if c.CertBatch < 1 {
		c.CertBatch = 1
	}
	if c.HeapTableSize == 0 {
		c.HeapTableSize = c.Mix.DBUpdateSize
	}
	return c
}

// validate rejects impossible configurations.
func (c Config) validate() error {
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: %d replicas", c.Replicas)
	}
	if c.Design == core.Standalone && c.Replicas != 1 {
		return fmt.Errorf("cluster: standalone design with %d replicas", c.Replicas)
	}
	if c.Warmup < 0 || c.Measure <= 0 {
		return fmt.Errorf("cluster: bad measurement window %v+%v", c.Warmup, c.Measure)
	}
	if c.Mix.Pw > 0 && c.HeapTableSize <= 0 && c.Mix.DBUpdateSize <= 0 {
		return fmt.Errorf("cluster: update workload without a row pool")
	}
	return nil
}

// NodeStats reports one node's measured steady-state behaviour.
type NodeStats struct {
	Name       string
	UtilCPU    float64
	UtilDisk   float64
	QueueCPU   float64
	QueueDisk  float64
	Commits    int64 // transactions committed at this node
	Writesets  int64 // remote writesets applied at this node
	Throughput float64
}

// Result is the measured outcome of a run.
type Result struct {
	Design   core.Design
	Replicas int

	Throughput      float64 // committed transactions/second
	ReadThroughput  float64
	WriteThroughput float64
	ResponseTime    float64 // mean over committed transactions, seconds
	ReadResponse    float64
	WriteResponse   float64
	ResponseCI95    float64 // 95% CI half-width of the mean response time

	// Response-time percentiles over committed transactions (seconds).
	ResponseP50 float64
	ResponseP95 float64
	ResponseP99 float64

	AbortRate      float64 // aborted update attempts / all update attempts
	Commits        int64
	UpdateCommits  int64
	UpdateAborts   int64
	Retries        int64
	AvgSnapshotLag float64 // mean versions a snapshot lagged the globally latest

	Nodes []NodeStats
}

// node is one simulated database replica.
type node struct {
	name    string
	cpu     des.Queue
	disk    des.Queue
	applied int64 // highest committed version visible at this node

	outstanding int // transactions currently routed here
	commits     int64
	writesets   int64
}

// system is the run-time state of one simulation.
type system struct {
	cfg   Config
	sim   *des.Sim
	rng   *stats.Rand
	nodes []*node

	// Global commit state (the certifier's view for MM, the master's
	// for SM/standalone).
	version    int64
	lastWriter map[int32]int64
	hotspot    *stats.Zipf // non-nil when HotspotTheta > 0

	measuring bool
	start     float64 // measurement window start

	commits       int64
	readCommits   int64
	updateCommits int64
	updateAborts  int64
	attempts      int64
	retries       int64

	respAll   stats.Welford
	respRead  stats.Welford
	respWrite stats.Welford
	respHist  *stats.Histogram
	snapLag   stats.Welford
}

// Run executes the configured experiment and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	sys := &system{
		cfg:        cfg,
		sim:        des.New(),
		rng:        stats.NewRand(cfg.Seed ^ 0xDB15CA1E),
		lastWriter: make(map[int32]int64),
		// 1 ms buckets to 60 s cover every workload the paper runs.
		respHist: stats.NewHistogram(0, 60, 60000),
	}
	if cfg.HotspotTheta > 0 && cfg.HeapTableSize > 0 {
		sys.hotspot = stats.NewZipf(cfg.HeapTableSize, cfg.HotspotTheta)
	}
	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("replica%d", i)
		if cfg.Design == core.SingleMaster {
			if i == 0 {
				name = "master"
			} else {
				name = fmt.Sprintf("slave%d", i)
			}
		}
		newStation := func(suffix string) des.Queue {
			if cfg.FIFO {
				return des.NewStation(sys.sim, name+suffix)
			}
			return des.NewPSStation(sys.sim, name+suffix)
		}
		sys.nodes = append(sys.nodes, &node{
			name: name,
			cpu:  newStation("/cpu"),
			disk: newStation("/disk"),
		})
	}

	if cfg.OpenLoopRate > 0 {
		sys.startOpenLoop(sys.rng.Split())
	} else {
		clients := cfg.Mix.Clients * cfg.Replicas
		for i := 0; i < clients; i++ {
			sys.startClient(sys.rng.Split())
		}
	}

	sys.sim.Run(cfg.Warmup)
	sys.beginMeasurement()
	sys.sim.Run(cfg.Warmup + cfg.Measure)
	return sys.result(), nil
}

// beginMeasurement discards warm-up statistics.
func (s *system) beginMeasurement() {
	s.measuring = true
	s.start = s.sim.Now()
	for _, n := range s.nodes {
		n.cpu.ResetStats()
		n.disk.ResetStats()
		n.commits = 0
		n.writesets = 0
	}
}

// result gathers the measurement window into a Result.
func (s *system) result() Result {
	elapsed := s.sim.Now() - s.start
	res := Result{
		Design:          s.cfg.Design,
		Replicas:        s.cfg.Replicas,
		Throughput:      float64(s.commits) / elapsed,
		ReadThroughput:  float64(s.readCommits) / elapsed,
		WriteThroughput: float64(s.updateCommits) / elapsed,
		ResponseTime:    s.respAll.Mean(),
		ReadResponse:    s.respRead.Mean(),
		WriteResponse:   s.respWrite.Mean(),
		ResponseCI95:    s.respAll.CI95(),
		ResponseP50:     s.respHist.Quantile(0.50),
		ResponseP95:     s.respHist.Quantile(0.95),
		ResponseP99:     s.respHist.Quantile(0.99),
		Commits:         s.commits,
		UpdateCommits:   s.updateCommits,
		UpdateAborts:    s.updateAborts,
		Retries:         s.retries,
		AvgSnapshotLag:  s.snapLag.Mean(),
	}
	if s.attempts > 0 {
		res.AbortRate = float64(s.updateAborts) / float64(s.attempts)
	}
	for _, n := range s.nodes {
		res.Nodes = append(res.Nodes, NodeStats{
			Name:       n.name,
			UtilCPU:    n.cpu.Utilization(),
			UtilDisk:   n.disk.Utilization(),
			QueueCPU:   n.cpu.QueueLength(),
			QueueDisk:  n.disk.QueueLength(),
			Commits:    n.commits,
			Writesets:  n.writesets,
			Throughput: float64(n.commits) / elapsed,
		})
	}
	return res
}
