package cluster

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// startClient launches one closed-loop client process: think, submit a
// transaction, wait for commit, repeat. Aborted update transactions
// are retried immediately with a fresh snapshot, as the paper's Java
// servlets do; the response time of a committed transaction spans all
// its attempts.
func (s *system) startClient(rng *stats.Rand) {
	m := s.cfg.Mix
	var cycle func()
	cycle = func() {
		s.sim.After(rng.Exp(m.Think), func() {
			isUpdate := m.Pw > 0 && rng.Bernoulli(m.Pw)
			start := s.sim.Now()
			s.submit(rng, isUpdate, start, cycle)
		})
	}
	cycle()
}

// startOpenLoop launches a Poisson arrival source: each arrival is an
// independent transaction with no think loop behind it. The offered
// rate must stay below system capacity or the backlog grows without
// bound, which is exactly the contrast with closed-loop clients the
// open-vs-closed ablation demonstrates.
func (s *system) startOpenLoop(rng *stats.Rand) {
	m := s.cfg.Mix
	var arrive func()
	arrive = func() {
		s.sim.After(rng.Exp(1/s.cfg.OpenLoopRate), func() {
			isUpdate := m.Pw > 0 && rng.Bernoulli(m.Pw)
			s.submit(rng, isUpdate, s.sim.Now(), func() {})
			arrive()
		})
	}
	arrive()
}

// submit runs one transaction attempt chain until commit, then calls
// done.
func (s *system) submit(rng *stats.Rand, isUpdate bool, start float64, done func()) {
	target := s.route(isUpdate)
	target.outstanding++
	finish := func(committed bool) {
		target.outstanding--
		if !committed {
			// Retry on a freshly routed replica without thinking.
			if s.measuring {
				s.retries++
			}
			s.submit(rng, isUpdate, start, done)
			return
		}
		if s.measuring {
			rt := s.sim.Now() - start
			s.commits++
			s.respAll.Add(rt)
			s.respHist.Add(rt)
			if isUpdate {
				s.updateCommits++
				s.respWrite.Add(rt)
			} else {
				s.readCommits++
				s.respRead.Add(rt)
			}
			target.commits++
		}
		done()
	}

	dispatch := func() {
		if isUpdate {
			s.runUpdate(rng, target, finish)
		} else {
			s.runRead(rng, target, finish)
		}
	}
	if s.cfg.LBDelay > 0 {
		s.sim.After(s.cfg.LBDelay, dispatch)
	} else {
		dispatch()
	}
}

// route picks the replica a transaction executes on: the least-loaded
// replica for multi-master and for single-master reads (master
// included, §5.2), the master for single-master updates, and the only
// node otherwise.
func (s *system) route(isUpdate bool) *node {
	if s.cfg.Design == core.SingleMaster && isUpdate {
		return s.nodes[0]
	}
	best := s.nodes[0]
	for _, n := range s.nodes[1:] {
		if n.outstanding < best.outstanding {
			best = n
		}
	}
	return best
}

// speedOf returns the machine-speed factor of a node: the single
// master can be configured faster than the slaves (§6.2.1 remark).
func (s *system) speedOf(n *node) float64 {
	if s.cfg.Design == core.SingleMaster && n == s.nodes[0] && s.cfg.MasterSpeedup > 1 {
		return s.cfg.MasterSpeedup
	}
	return 1
}

// runRead executes a read-only transaction: CPU then disk with the
// mix's rc demands. Reads never abort under (G)SI.
func (s *system) runRead(rng *stats.Rand, n *node, finish func(bool)) {
	m := s.cfg.Mix
	speed := s.speedOf(n)
	n.cpu.Submit(rng.Exp(m.RC[workload.CPU]/speed), func() {
		n.disk.Submit(rng.Exp(m.RC[workload.Disk]/speed), func() {
			finish(true)
		})
	})
}

// runUpdate executes one update-transaction attempt: take a snapshot
// at the executing replica, execute (CPU then disk with wc demands),
// then certify. Multi-master certification adds the certifier delay
// and checks system-wide write-write conflicts; single-master and
// standalone check locally at the master. On commit the writeset is
// propagated to the other replicas.
func (s *system) runUpdate(rng *stats.Rand, n *node, finish func(bool)) {
	m := s.cfg.Mix
	if s.measuring {
		s.attempts++
	}
	snapshot := n.applied
	rows := s.sampleRows(rng)
	speed := s.speedOf(n)
	n.cpu.Submit(rng.Exp(m.WC[workload.CPU]/speed), func() {
		n.disk.Submit(rng.Exp(m.WC[workload.Disk]/speed), func() {
			certify := func() {
				if s.measuring {
					s.snapLag.Add(float64(s.version - snapshot))
				}
				if s.conflicts(rows, snapshot) {
					if s.measuring {
						s.updateAborts++
					}
					finish(false)
					return
				}
				s.commit(n, rows)
				finish(true)
			}
			if s.cfg.Design == core.MultiMaster && s.cfg.CertDelay > 0 {
				// Group commit amortizes the certifier's logging delay
				// over CertBatch concurrent requests.
				s.sim.After(s.cfg.CertDelay/float64(s.cfg.CertBatch), certify)
			} else {
				certify()
			}
		})
	})
}

// sampleRows draws the distinct rows an update transaction modifies
// from the updatable-row pool.
func (s *system) sampleRows(rng *stats.Rand) []int32 {
	u := s.cfg.Mix.UpdateOps
	pool := s.cfg.HeapTableSize
	if u <= 0 || pool <= 0 {
		return nil
	}
	if u > pool {
		u = pool
	}
	rows := make([]int32, 0, u)
	seen := make(map[int32]struct{}, u)
	for len(rows) < u {
		var r int32
		if s.hotspot != nil {
			r = int32(s.hotspot.Sample(rng))
		} else {
			r = int32(rng.Intn(pool))
		}
		if _, dup := seen[r]; dup {
			continue
		}
		seen[r] = struct{}{}
		rows = append(rows, r)
	}
	return rows
}

// conflicts reports whether any sampled row was written by a
// transaction that committed after the given snapshot
// (first-committer-wins).
func (s *system) conflicts(rows []int32, snapshot int64) bool {
	for _, r := range rows {
		if v, ok := s.lastWriter[r]; ok && v > snapshot {
			return true
		}
	}
	return false
}

// commit installs the transaction's writeset: bump the global version,
// record the rows, make the version visible at the committing node and
// propagate the writeset to every other replica, where applying it
// consumes the ws demands (in commit order, FIFO through each
// station).
func (s *system) commit(n *node, rows []int32) {
	s.version++
	v := s.version
	for _, r := range rows {
		s.lastWriter[r] = v
	}
	if v > n.applied {
		n.applied = v
	}
	m := s.cfg.Mix
	targets := s.propagationTargets(n)
	for _, t := range targets {
		t := t
		t.cpu.Submit(s.rng.Exp(m.WS[workload.CPU]), func() {
			t.disk.Submit(s.rng.Exp(m.WS[workload.Disk]), func() {
				if v > t.applied {
					t.applied = v
				}
				if s.measuring {
					t.writesets++
				}
			})
		})
	}
}

// propagationTargets lists the replicas that must apply a writeset
// committed at n: everyone else in multi-master, the slaves in
// single-master, nobody standalone.
func (s *system) propagationTargets(n *node) []*node {
	switch s.cfg.Design {
	case core.MultiMaster:
		out := make([]*node, 0, len(s.nodes)-1)
		for _, t := range s.nodes {
			if t != n {
				out = append(out, t)
			}
		}
		return out
	case core.SingleMaster:
		return s.nodes[1:]
	default:
		return nil
	}
}
