// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (regenerating the artifact end to end), the
// ablation studies from DESIGN.md, and micro-benchmarks for the hot
// paths (MVA solving, prediction, certification, storage commits,
// cluster simulation).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Per-experiment output is written by cmd/experiments; the benchmarks
// here time the same drivers on reduced sweeps so `go test -bench`
// terminates in minutes, not hours.
package repro

import (
	"io"
	"testing"

	"repro/internal/certifier"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mva"
	"repro/internal/sidb"
	"repro/internal/workload"
	"repro/internal/writeset"
)

// benchOpts returns reduced-size experiment options; the seed varies
// per iteration so the figure-pair cache cannot short-circuit repeat
// runs.
func benchOpts(i int) experiments.Options {
	return experiments.Options{
		Replicas: []int{1, 4, 16},
		Seed:     uint64(9000 + i),
		Warmup:   10,
		Measure:  40,
	}
}

// benchExperiment times one full experiment driver.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		r, err := e.Run(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Tables.

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Figures 6-13: measured-vs-predicted scalability sweeps.

func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "fig13") }

// Figure 14 and the certifier analysis (§6.3).

func BenchmarkFigure14(b *testing.B) {
	e, _ := experiments.ByID("fig14")
	for i := 0; i < b.N; i++ {
		opts := benchOpts(i)
		opts.Measure = 120 // abort statistics need a longer window
		r, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertifierAnalysis(b *testing.B) { benchExperiment(b, "certifier") }

// Ablations (DESIGN.md §6).

func BenchmarkAblationMVASolver(b *testing.B) { benchExperiment(b, "ablation-mva") }

func BenchmarkAblationConflictWindow(b *testing.B) {
	e, _ := experiments.ByID("ablation-cw")
	for i := 0; i < b.N; i++ {
		opts := benchOpts(i)
		opts.Measure = 120
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWritesetCost(b *testing.B) { benchExperiment(b, "ablation-ws") }

func BenchmarkAblationDiscipline(b *testing.B) { benchExperiment(b, "ablation-discipline") }

// BenchmarkAblationCertifierCenter compares modeling the certifier as
// a delay center (the paper's choice, justified in §6.3.2) against a
// queueing center: the queueing variant folds the certifier service
// into the replica demand, overstating contention for update-heavy
// mixes.
func BenchmarkAblationCertifierCenter(b *testing.B) {
	m := workload.TPCWOrdering()
	delay := core.NewParams(m)
	queueing := delay
	// Fold the certifier service into the per-update CPU demand (a
	// queueing-center approximation) and remove the delay center.
	queueing.CertDelay = 0
	queueing.Mix.WC[workload.CPU] += core.DefaultCertDelay
	var sink float64
	for i := 0; i < b.N; i++ {
		a := core.PredictMM(delay, 16)
		c := core.PredictMM(queueing, 16)
		sink += a.Throughput - c.Throughput
	}
	if sink == 0 && b.N > 0 {
		b.Log("delay-center and queueing-center models coincided (unexpected)")
	}
}

// Micro-benchmarks.

func BenchmarkMVAExactSolve(b *testing.B) {
	centers := []mva.Center{{Kind: mva.Queueing}, {Kind: mva.Queueing}}
	d := []float64{0.040, 0.015}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mva.Solve(centers, d, 1.0, 640)
	}
}

func BenchmarkMVASchweitzerSolve(b *testing.B) {
	centers := []mva.Center{{Kind: mva.Queueing}, {Kind: mva.Queueing}}
	d := []float64{0.040, 0.015}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mva.SolveSchweitzer(centers, d, 1.0, 640, 0)
	}
}

func BenchmarkMVATwoClassSolve(b *testing.B) {
	centers := []mva.Center{{Kind: mva.Queueing}, {Kind: mva.Queueing}}
	demands := [2][]float64{{0.040, 0.015}, {0.012, 0.006}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mva.SolveTwoClass(centers, demands, [2]float64{1, 1}, [2]int{200, 100})
	}
}

func BenchmarkPredictMM16(b *testing.B) {
	p := core.NewParams(workload.TPCWShopping())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.PredictMM(p, 16)
	}
}

func BenchmarkPredictSM16(b *testing.B) {
	p := core.NewParams(workload.TPCWOrdering())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.PredictSM(p, 16)
	}
}

func BenchmarkCertify(b *testing.B) {
	c := certifier.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := writeset.Writeset{Entries: []writeset.Entry{
			{Key: writeset.Key{Table: "t", Row: int64(i)}, Value: "v"},
		}}
		if _, err := c.Certify(c.Version(), ws); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			c.GC(c.Version() - 64)
		}
	}
}

// BenchmarkCertifyLongLog certifies update transactions whose snapshot
// predates a long retained log (10k records, as after a slow replica
// holds back GC). The indexed certifier must keep the per-request cost
// independent of the retained-log length.
func BenchmarkCertifyLongLog(b *testing.B) {
	c := certifier.New()
	for i := int64(0); i < 10000; i++ {
		w := writeset.Writeset{Entries: []writeset.Entry{
			{Key: writeset.Key{Table: "hist", Row: i}, Value: "v"},
		}}
		if _, err := c.Certify(c.Version(), w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := writeset.Writeset{Entries: []writeset.Entry{
			{Key: writeset.Key{Table: "live", Row: int64(i)}, Value: "v"},
		}}
		if _, err := c.Certify(0, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCertifyReplicatedSequential is the group-commit baseline:
// 64 certification requests, each paying its own Paxos round.
func BenchmarkCertifyReplicatedSequential(b *testing.B) {
	c, _, err := certifier.NewReplicated(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			w := writeset.Writeset{Entries: []writeset.Entry{
				{Key: writeset.Key{Table: "t", Row: int64(i*64 + j)}, Value: "v"},
			}}
			if _, err := c.Certify(c.Version(), w); err != nil {
				b.Fatal(err)
			}
		}
		if i%16 == 15 {
			c.GC(c.Version() - 64)
		}
	}
}

// BenchmarkCertifyBatch is the same 64-request load as
// BenchmarkCertifyReplicatedSequential, group-committed in one Paxos
// round per batch.
func BenchmarkCertifyBatch(b *testing.B) {
	c, _, err := certifier.NewReplicated(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reqs := make([]certifier.Request, 64)
		for j := range reqs {
			reqs[j] = certifier.Request{
				Snapshot: c.Version(),
				Writeset: writeset.Writeset{Entries: []writeset.Entry{
					{Key: writeset.Key{Table: "t", Row: int64(i*64 + j)}, Value: "v"},
				}},
			}
		}
		results, err := c.CertifyBatch(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil || !r.Outcome.Committed {
				b.Fatalf("batch request failed: %+v", r)
			}
		}
		if i%16 == 15 {
			c.GC(c.Version() - 64)
		}
	}
}

// BenchmarkWritesetConflicts intersects two 16-row writesets, the
// certifier's inner loop before the inverted index existed.
func BenchmarkWritesetConflicts(b *testing.B) {
	mk := func(base int64) writeset.Writeset {
		bld := writeset.NewBuilder()
		for i := int64(0); i < 16; i++ {
			bld.Put(writeset.Key{Table: "item", Row: base + i}, "v")
		}
		return bld.Writeset()
	}
	x, y := mk(0), mk(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if x.Conflicts(y) {
			b.Fatal("disjoint writesets reported conflicting")
		}
	}
}

// BenchmarkSIDBParallelReads drives read-only transactions from all
// procs against one database — the dominant operation of the TPC-W
// browsing mix. Sharded storage should scale this with GOMAXPROCS.
func BenchmarkSIDBParallelReads(b *testing.B) {
	db := sidb.New()
	if err := db.CreateTable("item"); err != nil {
		b.Fatal(err)
	}
	const rows = 65536
	if err := db.BulkLoad("item", rows, func(i int64) string { return "value" }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			tx := db.Begin()
			if _, ok, err := tx.Read("item", i%rows); err != nil || !ok {
				b.Errorf("read: %v %v", ok, err)
				return
			}
			tx.Abort()
			i += 7919
		}
	})
}

func BenchmarkSIDBUpdateCommit(b *testing.B) {
	db := sidb.New()
	if err := db.CreateTable("item"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if err := tx.Write("item", int64(i%4096), "value"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if i%8192 == 8191 {
			db.GC()
		}
	}
}

func BenchmarkSIDBRead(b *testing.B) {
	db := sidb.New()
	if err := db.CreateTable("item"); err != nil {
		b.Fatal(err)
	}
	seed := db.Begin()
	for i := int64(0); i < 1024; i++ {
		seed.Write("item", i, "value")
	}
	if _, _, err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, _, err := tx.Read("item", int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Abort()
	}
}

func BenchmarkClusterSimMM16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(cluster.Config{
			Mix:      workload.TPCWShopping(),
			Design:   core.MultiMaster,
			Replicas: 16,
			Seed:     uint64(i + 1),
			Warmup:   5,
			Measure:  20,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfilePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Profile(TPCWShopping(), uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndCompare times the full §6 loop for one point:
// predict and measure TPC-W shopping MM at 8 replicas.
func BenchmarkEndToEndCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Compare(TPCWShopping(), MultiMaster, []int{8}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].ThroughputErr > 0.25 {
			b.Fatalf("prediction error %.0f%%", pts[0].ThroughputErr*100)
		}
	}
}

func BenchmarkAblationPerClass(b *testing.B) {
	e, _ := experiments.ByID("ablation-perclass")
	for i := 0; i < b.N; i++ {
		opts := benchOpts(i)
		opts.Measure = 90
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictMMPerClass16(b *testing.B) {
	p := core.NewParams(workload.TPCWShopping())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.PredictMMPerClass(p, 16)
	}
}
