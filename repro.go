// Package repro predicts the scalability of replicated databases from
// standalone database profiling, reproducing Elnikety et al.,
// "Predicting Replicated Database Scalability from Standalone Database
// Profiling" (EuroSys 2009).
//
// The package is the public facade over the repository's internals:
//
//   - analytical models for multi-master and single-master replication
//     under (generalized) snapshot isolation (internal/core), solved
//     with exact MVA (internal/mva);
//   - the §4 profiling methodology that measures every model input on
//     a standalone system (internal/profiler, internal/trace);
//   - a simulated prototype cluster that plays the role of the paper's
//     16-node testbed for validation (internal/cluster on top of
//     internal/des);
//   - working middleware prototypes of both designs over a real
//     snapshot-isolated storage engine with a Paxos-replicated
//     certifier (internal/repl, internal/sidb, internal/certifier,
//     internal/paxos).
//
// The typical pipeline is Profile (or NewParams from known
// parameters), then PredictMM/PredictSM across replica counts, and
// optionally Measure/Compare to validate against the simulated
// prototype:
//
//	params := repro.NewParams(repro.TPCWShopping())
//	for n := 1; n <= 16; n++ {
//	    fmt.Println(repro.PredictMM(params, n))
//	}
package repro

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// Re-exported core types. The facade aliases them so applications
// never import internal packages.
type (
	// Mix is a transactional workload with its model parameters.
	Mix = workload.Mix
	// Params are the model inputs measured on a standalone database.
	Params = core.Params
	// Prediction is a model output for one (design, N) point.
	Prediction = core.Prediction
	// Design selects the replication design.
	Design = core.Design
	// Measured is the outcome of a simulated prototype run.
	Measured = cluster.Result
	// AssumptionReport lists §3.4 assumption violations.
	AssumptionReport = core.AssumptionReport
)

// Replication designs.
const (
	Standalone   = core.Standalone
	MultiMaster  = core.MultiMaster
	SingleMaster = core.SingleMaster
)

// Benchmark mixes (Tables 2-5 of the paper).
var (
	TPCWBrowsing  = workload.TPCWBrowsing
	TPCWShopping  = workload.TPCWShopping
	TPCWOrdering  = workload.TPCWOrdering
	RUBiSBrowsing = workload.RUBiSBrowsing
	RUBiSBidding  = workload.RUBiSBidding
	AllMixes      = workload.All
)

// Demand is a per-resource service demand vector (CPU, disk) in
// seconds.
type Demand = workload.Demand

// DemandOf builds a demand vector from CPU and disk service times in
// seconds.
func DemandOf(cpu, disk float64) Demand {
	var d Demand
	d[workload.CPU] = cpu
	d[workload.Disk] = disk
	return d
}

// NewParams builds model parameters from known mix parameters with
// the paper's default middleware delays and an estimated L(1).
func NewParams(m Mix) Params { return core.NewParams(m) }

// Profile measures all model parameters on the standalone simulated
// database following §4: separate calibration runs for rc, wc and ws
// via the Utilization Law, plus a mixed run for L(1) and A1.
func Profile(m Mix, seed uint64) (Params, error) {
	p, _, err := profiler.Profile(m, profiler.Options{Seed: seed})
	return p, err
}

// PredictStandalone evaluates the standalone model (§3.3.1).
func PredictStandalone(p Params) Prediction { return core.PredictStandalone(p) }

// PredictMM evaluates the multi-master model (§3.3.2) for n replicas.
func PredictMM(p Params, n int) Prediction { return core.PredictMM(p, n) }

// PredictSM evaluates the single-master model (§3.3.3) for n replicas
// (1 master + n-1 slaves).
func PredictSM(p Params, n int) Prediction { return core.PredictSM(p, n) }

// Predict dispatches on design.
func Predict(design Design, p Params, n int) (Prediction, error) {
	switch design {
	case Standalone:
		return core.PredictStandalone(p), nil
	case MultiMaster:
		return core.PredictMM(p, n), nil
	case SingleMaster:
		return core.PredictSM(p, n), nil
	default:
		return Prediction{}, fmt.Errorf("repro: unknown design %q", design)
	}
}

// CheckAssumptions reports which §3.4 model assumptions the workload
// violates; predictions remain usable but become upper bounds.
func CheckAssumptions(p Params, maxReplicas int) AssumptionReport {
	return core.CheckAssumptions(p, maxReplicas)
}

// Measure runs the simulated prototype cluster — the stand-in for the
// paper's real 16-node testbed — and returns its measurements.
func Measure(m Mix, design Design, replicas int, seed uint64) (Measured, error) {
	return cluster.Run(cluster.Config{
		Mix:      m,
		Design:   design,
		Replicas: replicas,
		Seed:     seed,
	})
}

// ComparisonPoint pairs a prediction with a measurement at one replica
// count.
type ComparisonPoint struct {
	Replicas      int
	Predicted     Prediction
	Measured      Measured
	ThroughputErr float64 // relative error of predicted vs measured throughput
	ResponseErr   float64 // relative error of predicted vs measured response time
}

// Compare predicts and measures a workload across replica counts, the
// full validation loop of §6.
func Compare(m Mix, design Design, replicas []int, seed uint64) ([]ComparisonPoint, error) {
	params := NewParams(m)
	out := make([]ComparisonPoint, 0, len(replicas))
	for _, n := range replicas {
		pred, err := Predict(design, params, n)
		if err != nil {
			return nil, err
		}
		meas, err := Measure(m, design, n, seed+uint64(n))
		if err != nil {
			return nil, err
		}
		out = append(out, ComparisonPoint{
			Replicas:      n,
			Predicted:     pred,
			Measured:      meas,
			ThroughputErr: relErr(pred.Throughput, meas.Throughput),
			ResponseErr:   relErr(pred.ResponseTime, meas.ResponseTime),
		})
	}
	return out, nil
}

// relErr is |got-want|/|want| guarding the zero case.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// CapacityPlan finds the smallest replica count whose predicted
// throughput meets targetTPS under the given design, up to
// maxReplicas. It reports the prediction at that count and whether the
// target is reachable — the capacity-planning use case the paper's
// introduction motivates.
func CapacityPlan(p Params, design Design, targetTPS float64, maxReplicas int) (int, Prediction, bool) {
	for n := 1; n <= maxReplicas; n++ {
		pred, err := Predict(design, p, n)
		if err != nil {
			return 0, Prediction{}, false
		}
		if pred.Throughput >= targetTPS {
			return n, pred, true
		}
	}
	pred, _ := Predict(design, p, maxReplicas)
	return maxReplicas, pred, false
}
