package repro

import (
	"math"
	"testing"
)

func TestPredictDispatch(t *testing.T) {
	p := NewParams(TPCWShopping())
	for _, d := range []Design{Standalone, MultiMaster, SingleMaster} {
		pred, err := Predict(d, p, 2)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if pred.Throughput <= 0 {
			t.Fatalf("%s: X = %v", d, pred.Throughput)
		}
	}
	if _, err := Predict(Design("bogus"), p, 2); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestFacadeMatchesCore(t *testing.T) {
	p := NewParams(TPCWOrdering())
	if PredictMM(p, 8).Throughput <= PredictMM(p, 1).Throughput {
		t.Fatal("MM throughput did not grow")
	}
	if PredictSM(p, 16).Throughput > PredictMM(p, 16).Throughput {
		t.Fatal("SM should trail MM for the ordering mix")
	}
}

func TestProfileFacade(t *testing.T) {
	params, err := Profile(TPCWBrowsing(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	truth := TPCWBrowsing()
	if math.Abs(params.Mix.RC[0]-truth.RC[0])/truth.RC[0] > 0.10 {
		t.Fatalf("profiled rcCPU = %v, truth %v", params.Mix.RC[0], truth.RC[0])
	}
}

func TestMeasureFacade(t *testing.T) {
	res, err := Measure(TPCWShopping(), MultiMaster, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Replicas != 2 {
		t.Fatalf("measure: %+v", res)
	}
}

func TestCompareWithinPaperMargin(t *testing.T) {
	points, err := Compare(TPCWShopping(), MultiMaster, []int{1, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.ThroughputErr > 0.15 {
			t.Errorf("N=%d: throughput error %.0f%%", pt.Replicas, pt.ThroughputErr*100)
		}
	}
}

func TestCapacityPlan(t *testing.T) {
	p := NewParams(TPCWShopping())
	n, pred, ok := CapacityPlan(p, MultiMaster, 200, 16)
	if !ok {
		t.Fatal("200 tps should be reachable for shopping MM")
	}
	if pred.Throughput < 200 {
		t.Fatalf("plan prediction %v below target", pred.Throughput)
	}
	// The previous count must be insufficient (minimality).
	if n > 1 {
		prev := PredictMM(p, n-1)
		if prev.Throughput >= 200 {
			t.Fatalf("plan not minimal: N-1=%d already gives %.1f", n-1, prev.Throughput)
		}
	}
	// Unreachable target.
	if _, _, ok := CapacityPlan(p, SingleMaster, 1e6, 4); ok {
		t.Fatal("impossible target reported reachable")
	}
}

func TestCheckAssumptionsFacade(t *testing.T) {
	rep := CheckAssumptions(NewParams(TPCWShopping()), 16)
	if !rep.OK() {
		t.Fatalf("shopping should satisfy assumptions: %v", rep)
	}
}

func TestAllMixesExported(t *testing.T) {
	if len(AllMixes()) != 5 {
		t.Fatalf("mixes = %d", len(AllMixes()))
	}
}

func TestDemandOf(t *testing.T) {
	d := DemandOf(0.01, 0.02)
	if d[0] != 0.01 || d[1] != 0.02 {
		t.Fatalf("DemandOf = %v", d)
	}
	if math.Abs(d.Total()-0.03) > 1e-15 {
		t.Fatalf("Total = %v", d.Total())
	}
}
