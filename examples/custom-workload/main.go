// Custom workload: apply the models to a workload that is not one of
// the paper's benchmarks — here, a write-heavy telemetry-ingest
// service — including the assumption checks that tell you when the
// predictions degrade into upper bounds.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Describe the workload the way §4 profiling would measure it on a
	// standalone database. Times are in seconds.
	ms := func(v float64) float64 { return v / 1000 }
	mix := repro.Mix{
		Benchmark: "custom",
		Name:      "telemetry-ingest",
		Pr:        0.30, // dashboards
		Pw:        0.70, // ingest writes
		Clients:   60,
		Think:     0.5,
		RC:        repro.DemandOf(ms(18.0), ms(9.0)), // dashboard query: CPU, disk
		WC:        repro.DemandOf(ms(6.0), ms(11.0)), // ingest txn: disk-heavy
		WS:        repro.DemandOf(ms(2.0), ms(8.5)),  // applying a writeset
		UpdateOps: 4, DBUpdateSize: 500000,
		A1: 0.0004,
	}
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	params := repro.NewParams(mix)

	fmt.Printf("workload: %s\n", mix)
	// With 70% updates this violates the read-dominated assumption;
	// the model warns and predictions become optimistic bounds.
	fmt.Println(repro.CheckAssumptions(params, 12))
	fmt.Println()

	fmt.Println("  N   multi-master        single-master")
	var mm1, sm1 float64
	for n := 1; n <= 12; n++ {
		mm := repro.PredictMM(params, n)
		sm := repro.PredictSM(params, n)
		if n == 1 {
			mm1, sm1 = mm.Throughput, sm.Throughput
		}
		fmt.Printf("  %-3d %7.1f tps (%4.1fx)  %7.1f tps (%4.1fx)\n",
			n, mm.Throughput, mm.Throughput/mm1, sm.Throughput, sm.Throughput/sm1)
	}

	fmt.Println("\nwith writes dominating, neither design scales far: multi-master pays")
	fmt.Println("(N-1) writeset applications per commit, single-master pins every")
	fmt.Println("update on one node. The model quantifies both ceilings before you buy hardware.")
}
