// Quickstart: predict how the TPC-W shopping mix scales on a
// multi-master replicated database before deploying any replicas,
// using only the parameters a standalone database exposes.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Model parameters come straight from the standalone measurements
	// (Tables 2-3 of the paper); NewParams fills in the paper's
	// middleware delays and estimates L(1).
	mix := repro.TPCWShopping()
	params := repro.NewParams(mix)

	fmt.Printf("workload: %s\n", mix)
	fmt.Printf("standalone update response time L(1) = %.0f ms\n\n", params.L1*1000)

	// Check the model's domain before trusting the numbers (§3.4).
	if rep := repro.CheckAssumptions(params, 16); !rep.OK() {
		fmt.Println(rep)
	}

	fmt.Println("multi-master scalability prediction:")
	fmt.Println("  N   throughput   speedup   response")
	var x1 float64
	for n := 1; n <= 16; n *= 2 {
		pred := repro.PredictMM(params, n)
		if n == 1 {
			x1 = pred.Throughput
		}
		fmt.Printf("  %-3d %7.1f tps   %4.1fx    %5.0f ms\n",
			n, pred.Throughput, pred.Speedup(x1), pred.ResponseTime*1000)
	}

	// The same workload saturates much earlier on a single-master
	// system: the master executes every update.
	fmt.Println("\nsingle-master comparison at 16 replicas:")
	mm := repro.PredictMM(params, 16)
	sm := repro.PredictSM(params, 16)
	fmt.Printf("  multi-master : %6.1f tps\n", mm.Throughput)
	fmt.Printf("  single-master: %6.1f tps (master CPU at %.0f%%)\n",
		sm.Throughput, sm.Master.UtilCPU*100)
}
