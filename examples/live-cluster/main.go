// Live cluster: run the actual replication middleware (§5), not the
// performance simulation — a multi-master cluster over the in-memory
// snapshot-isolation engine with a Paxos-replicated certifier. The
// example drives concurrent clients, kills a certifier backup
// mid-run, verifies the system keeps committing, and checks that all
// replicas converge to identical contents.
package main

import (
	"fmt"
	"os"

	"repro/internal/repl"
	"repro/internal/repl/mm"
	"repro/internal/workload"
)

func main() {
	cluster, err := mm.New(mm.Options{
		Replicas:            4,
		ReplicatedCertifier: true, // leader + two backups, as deployed in the paper
		EagerCertification:  true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cat := workload.TPCWCatalog()
	const scale = 100 // 1/100th of the standard table sizes
	fmt.Println("loading TPC-W schema on 4 replicas...")
	if err := repl.LoadCatalog(cluster, cat, scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mix := workload.TPCWShopping()
	fmt.Println("phase 1: 8 clients, healthy certifier group")
	res := repl.Drive(cluster, cat, mix, 8, 50, scale, 7)
	fmt.Printf("  committed %d (reads %d, updates %d), aborts retried %d, errors %d\n",
		res.Commits, res.ReadCommits, res.UpdateCommits, res.Aborts, res.Errors)

	fmt.Println("phase 2: certifier backup 2 fails; commits must continue (majority holds)")
	cluster.Transport().SetDown(2, true)
	res = repl.Drive(cluster, cat, mix, 8, 50, scale, 8)
	fmt.Printf("  committed %d (reads %d, updates %d), aborts retried %d, errors %d\n",
		res.Commits, res.ReadCommits, res.UpdateCommits, res.Aborts, res.Errors)
	if res.Errors > 0 {
		fmt.Fprintln(os.Stderr, "commits failed with one backup down")
		os.Exit(1)
	}

	fmt.Println("phase 3: backup returns")
	cluster.Transport().SetDown(2, false)
	res = repl.Drive(cluster, cat, mix, 8, 50, scale, 9)
	fmt.Printf("  committed %d, errors %d\n", res.Commits, res.Errors)

	fmt.Print("convergence check across all 4 replicas... ")
	tables := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		tables = append(tables, name)
	}
	if err := repl.CheckConvergence(cluster, tables); err != nil {
		fmt.Println("FAILED")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ok")

	commits, aborts := cluster.Certifier().Stats()
	fmt.Printf("certifier totals: %d commits, %d aborts, final version %d\n",
		commits, aborts, cluster.Certifier().Version())
}
