// Elastic scale-out demo: one multi-master replica server starts
// alone; a rising closed-loop TPC-W-profile load pushes the live
// profile through the MVA predictor and the controller grows the
// cluster — each new replica joins online with a snapshot transfer
// and writeset catch-up — then shrinks it back once the load stops.
//
//	go run ./examples/elastic-scaleout
package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/elastic"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	prim, err := server.New(server.Options{
		Design:   "mm",
		ID:       0,
		Listen:   "127.0.0.1:0",
		Replicas: 1,
	})
	check(err)
	prim.Start()
	defer prim.Close()
	fmt.Printf("primary serving on %s\n", prim.Addr())

	cl, err := client.New(client.Options{
		Servers:       []string{prim.Addr()},
		Design:        "mm",
		Watch:         true,
		WatchInterval: 50 * time.Millisecond,
	})
	check(err)
	defer cl.Close()
	check(cl.CreateTable("acct"))

	// The scaler spawns loopback replicas through the join protocol;
	// a production deployment would start them on fresh machines.
	scaler := elastic.NewLocalScaler(1, func() (elastic.Replica, error) {
		rep, err := server.New(server.Options{
			Design:  "mm",
			Listen:  "127.0.0.1:0",
			Join:    true,
			Primary: prim.Addr(),
		})
		if err != nil {
			return nil, err
		}
		rep.Start()
		fmt.Printf("  + replica joined on %s\n", rep.Addr())
		return rep, nil
	})
	defer scaler.Close()
	src := elastic.NewWireSource(prim.Addr(), "mm", 2*time.Second)
	defer src.Close()

	const think = 25 * time.Millisecond
	ctl, err := elastic.NewController(elastic.Config{
		Min: 1, Max: 3,
		Interval: 100 * time.Millisecond,
		Cooldown: 300 * time.Millisecond,
		Base:     workload.TPCWShopping(), // standalone profile: service demands
		Think:    think.Seconds(),
	}, scaler, src)
	check(err)
	stop := make(chan struct{})
	go ctl.Run(stop)
	defer close(stop)

	// Phase 1: rising update load from 16 closed-loop clients.
	fmt.Println("phase 1: 16 clients, controller sizing the cluster live")
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := int64(0); ; seq++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				row := int64(w)*1_000_000 + seq
				for {
					tx, err := cl.BeginUpdate()
					if err != nil {
						return
					}
					err = tx.Write("acct", row, fmt.Sprintf("w%d-%d", w, seq))
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					if !errors.Is(err, repl.ErrAborted) {
						return
					}
				}
				time.Sleep(think)
			}
		}(w)
	}

	deadline := time.Now().Add(30 * time.Second)
	for scaler.Replicas() < 3 && time.Now().Before(deadline) {
		st := ctl.Status()
		fmt.Printf("  replicas=%d target=%d est-clients=%.1f predicted-util=%.2f\n",
			scaler.Replicas(), st.Target, st.Clients, st.Util)
		time.Sleep(500 * time.Millisecond)
	}
	fmt.Printf("cluster grew to %d replicas (state-transfer failures: %d)\n",
		scaler.Replicas(), scaler.Failures())

	close(stopLoad)
	wg.Wait()

	// Phase 2: load gone; idle windows shrink the cluster back.
	fmt.Println("phase 2: load stopped, controller draining replicas")
	deadline = time.Now().Add(30 * time.Second)
	for scaler.Replicas() > 1 && time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
	}
	st := ctl.Status()
	fmt.Printf("cluster back to %d replica(s); controller ops: %d up / %d down\n",
		scaler.Replicas(), st.Ups, st.Downs)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
