// TPC-W scalability study: the paper's full validation loop for one
// workload — profile the standalone system (§4), predict the
// replicated systems (§3), then measure the simulated prototypes (§6)
// and report the prediction error, reproducing the Figure 6/8 story
// for the shopping mix.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	mix := repro.TPCWShopping()

	// Step 1 — profile the standalone database. Everything the model
	// needs comes from these four calibration runs; no replicated
	// deployment is involved.
	fmt.Println("step 1: profiling the standalone system (§4)...")
	params, err := repro.Profile(mix, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  rc = %.1f/%.1f ms, wc = %.1f/%.1f ms, ws = %.1f/%.1f ms (CPU/disk)\n",
		params.Mix.RC[0]*1000, params.Mix.RC[1]*1000,
		params.Mix.WC[0]*1000, params.Mix.WC[1]*1000,
		params.Mix.WS[0]*1000, params.Mix.WS[1]*1000)
	fmt.Printf("  L(1) = %.0f ms, A1 = %.4f%%\n\n", params.L1*1000, params.Mix.A1*100)

	// Step 2+3 — predict, then validate against the simulated
	// prototype cluster at each replica count.
	for _, design := range []repro.Design{repro.MultiMaster, repro.SingleMaster} {
		fmt.Printf("step 2/3: %s — predicted vs measured\n", design)
		fmt.Println("  N   predicted X   measured X   err    predicted RT   measured RT")
		for _, n := range []int{1, 2, 4, 8, 16} {
			pred, err := repro.Predict(design, params, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			meas, err := repro.Measure(mix, design, n, 1000+uint64(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			errPct := 100 * abs(pred.Throughput-meas.Throughput) / meas.Throughput
			fmt.Printf("  %-3d %8.1f tps %9.1f tps %5.1f%%  %9.0f ms  %9.0f ms\n",
				n, pred.Throughput, meas.Throughput, errPct,
				pred.ResponseTime*1000, meas.ResponseTime*1000)
		}
		fmt.Println()
	}
	fmt.Println("the paper's validation bar is 15% error; see EXPERIMENTS.md for the full sweep")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
