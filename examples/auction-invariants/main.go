// Auction invariants: run the RUBiS auction application on the live
// multi-master middleware with concurrent bidders and prove the
// integrity properties that snapshot-isolation replication must
// provide — the recorded highest bid always equals the maximum over
// the bid records, buy-now never oversells, user ratings equal the sum
// of their comments, and every replica converges to identical state.
package main

import (
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/repl/mm"
)

func main() {
	cluster, err := mm.New(mm.Options{
		Replicas:            4,
		ReplicatedCertifier: true,
		EagerCertification:  true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	const (
		items = 25
		users = 40
	)
	site, err := app.NewRUBiS(cluster, cluster, items, users)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("auction site: %d items, %d users, 4 replicas, Paxos-replicated certifier\n", items, users)
	fmt.Println("running 12 concurrent bidders, 30 interaction cycles each...")

	inv, err := site.RunMixed(12, 30, 2026)
	if err != nil {
		fmt.Fprintf(os.Stderr, "integrity violation: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("\nintegrity audit passed on every replica:")
	fmt.Printf("  items audited:       %d\n", inv.Items)
	fmt.Printf("  bids recorded:       %d (every item's maxbid == max of its bids)\n", inv.Bids)
	fmt.Printf("  comments recorded:   %d (every rating == sum of comments)\n", inv.Comments)
	fmt.Printf("  sum of maxbids:      %d (identical on all 4 replicas)\n", inv.MaxBids)

	commits, aborts := cluster.Certifier().Stats()
	fmt.Printf("\ncertifier: %d commits, %d write-write aborts (retried by clients)\n", commits, aborts)
	if aborts == 0 {
		fmt.Println("note: contention was low this run; raise bidders or shrink items to see aborts")
	}
	removed := cluster.GC()
	fmt.Printf("certification log GC reclaimed %d records after all replicas caught up\n", removed)
}
