// Capacity planning: given a throughput target, how many replicas are
// needed, and which replication design gets there cheaper? This is the
// deployment question the paper's introduction motivates (capacity
// planning and dynamic service provisioning) — answered here without
// building the replicated system.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		maxReplicas = 16
	)
	targets := []float64{50, 100, 200, 300}

	for _, mixFn := range []func() repro.Mix{
		repro.TPCWShopping,
		repro.TPCWOrdering,
		repro.RUBiSBidding,
	} {
		mix := mixFn()
		params := repro.NewParams(mix)
		fmt.Printf("== %s ==\n", mix)
		fmt.Printf("%-12s  %-22s  %-22s\n", "target tps", "multi-master", "single-master")
		for _, target := range targets {
			row := fmt.Sprintf("%-12.0f", target)
			for _, design := range []repro.Design{repro.MultiMaster, repro.SingleMaster} {
				n, pred, ok := repro.CapacityPlan(params, design, target, maxReplicas)
				if ok {
					row += fmt.Sprintf("  %-22s", fmt.Sprintf("%d replicas (%.0f tps)", n, pred.Throughput))
				} else {
					row += fmt.Sprintf("  %-22s", fmt.Sprintf("unreachable (max %.0f)", pred.Throughput))
				}
			}
			fmt.Println(row)
		}

		// Where does single-master stop paying off? Find its saturation
		// point: the first N whose marginal throughput gain drops below
		// 5%.
		prev := repro.PredictSM(params, 1).Throughput
		for n := 2; n <= maxReplicas; n++ {
			x := repro.PredictSM(params, n).Throughput
			if x < prev*1.05 {
				fmt.Printf("single-master saturates at about %d replicas (%.0f tps): the master executes every update\n",
					n-1, prev)
				break
			}
			prev = x
			if n == maxReplicas {
				fmt.Printf("single-master still scaling at %d replicas\n", maxReplicas)
			}
		}
		fmt.Println()
	}
}
