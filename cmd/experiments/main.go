// Command experiments regenerates the paper's evaluation: every table
// (2-5) and figure (6-14) of §6 plus the certifier sensitivity
// analysis and the repository's ablation studies. Output is the same
// rows/series the paper reports, with measured (simulated prototype)
// and predicted (analytical model) columns and the prediction error.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig6,fig7
//	experiments -exp fig14 -measure 900
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expIDs   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		replicas = flag.String("replicas", "", "comma-separated replica counts (default 1,2,4,6,8,10,12,14,16)")
		seed     = flag.Uint64("seed", 0, "measurement seed (0 = default)")
		warmup   = flag.Float64("warmup", 0, "warm-up window in virtual seconds (0 = default)")
		measure  = flag.Float64("measure", 0, "measurement window in virtual seconds (0 = default)")
		profile  = flag.Bool("use-profiler", false, "derive model parameters by profiling instead of table inputs")
		quick    = flag.Bool("quick", false, "fast mode: fewer replica points and short windows")
		format   = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := experiments.Options{
		Seed:        *seed,
		Warmup:      *warmup,
		Measure:     *measure,
		UseProfiler: *profile,
	}
	if *replicas != "" {
		for _, part := range strings.Split(*replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "experiments: bad replica count %q\n", part)
				os.Exit(2)
			}
			opts.Replicas = append(opts.Replicas, n)
		}
	}
	if *quick {
		if len(opts.Replicas) == 0 {
			opts.Replicas = []int{1, 4, 16}
		}
		if opts.Warmup == 0 {
			opts.Warmup = 10
		}
		if opts.Measure == 0 {
			opts.Measure = 60
		}
	}

	var ids []string
	if *expIDs == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expIDs, ",")
	}

	for i, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		r, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			if err := r.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		case "csv":
			c, ok := r.(experiments.CSVRenderable)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: %s has no CSV form\n", e.ID)
				os.Exit(1)
			}
			if err := c.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown format %q (text|csv)\n", *format)
			os.Exit(2)
		}
	}
}
