// Command predict evaluates the analytical models for a benchmark mix
// and prints throughput, response time and abort-rate predictions
// across replica counts — the capacity-planning front end of the
// paper.
//
// Usage:
//
//	predict -mix tpcw-shopping -design mm -replicas 16
//	predict -mix rubis-bidding -design both -replicas 8 -target 100
//	predict -params params.json -design sm    # from profiledb -out
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	var (
		mixID    = flag.String("mix", "tpcw-shopping", "workload mix id (tpcw-browsing|tpcw-shopping|tpcw-ordering|rubis-browsing|rubis-bidding)")
		design   = flag.String("design", "both", "replication design: mm, sm or both")
		replicas = flag.Int("replicas", 16, "maximum replica count")
		target   = flag.Float64("target", 0, "optional target throughput (tps) for capacity planning")
		profile  = flag.Bool("profile", false, "derive parameters by profiling the simulated standalone system instead of table inputs")
		paramsIn = flag.String("params", "", "read parameters from a JSON file written by profiledb -out")
		seed     = flag.Uint64("seed", 1, "profiling seed")
	)
	flag.Parse()

	var params repro.Params
	var mix repro.Mix
	switch {
	case *paramsIn != "":
		f, err := os.Open(*paramsIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predict: %v\n", err)
			os.Exit(1)
		}
		params, err = core.ReadParams(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "predict: %v\n", err)
			os.Exit(1)
		}
		mix = params.Mix
	default:
		var ok bool
		mix, ok = workload.ByID(*mixID)
		if !ok {
			fmt.Fprintf(os.Stderr, "predict: unknown mix %q; available:\n", *mixID)
			for _, m := range workload.All() {
				fmt.Fprintf(os.Stderr, "  %s\n", m.ID())
			}
			os.Exit(2)
		}
		var err error
		if *profile {
			fmt.Println("profiling standalone system (4 calibration runs)...")
			params, err = repro.Profile(mix, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "predict: %v\n", err)
				os.Exit(1)
			}
		} else {
			params = repro.NewParams(mix)
		}
	}

	fmt.Printf("workload: %s\n", mix)
	fmt.Printf("L(1) = %.1f ms, A1 = %.4f%%\n", params.L1*1000, params.Mix.A1*100)
	if rep := repro.CheckAssumptions(params, *replicas); !rep.OK() {
		fmt.Println(rep)
	}
	fmt.Println()

	designs := map[string][]repro.Design{
		"mm":   {repro.MultiMaster},
		"sm":   {repro.SingleMaster},
		"both": {repro.MultiMaster, repro.SingleMaster},
	}[*design]
	if designs == nil {
		fmt.Fprintf(os.Stderr, "predict: unknown design %q (mm|sm|both)\n", *design)
		os.Exit(2)
	}

	for _, d := range designs {
		fmt.Printf("== %s ==\n", d)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "N\tthroughput (tps)\tspeedup\tresponse (ms)\tabort\tutil cpu\tutil disk")
		var x1 float64
		for n := 1; n <= *replicas; n++ {
			pred, err := repro.Predict(d, params, n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "predict: %v\n", err)
				os.Exit(1)
			}
			if n == 1 {
				x1 = pred.Throughput
			}
			role := pred.Replica
			if d == repro.SingleMaster {
				role = pred.Master
			}
			fmt.Fprintf(w, "%d\t%.1f\t%.1fx\t%.0f\t%.3f%%\t%.0f%%\t%.0f%%\n",
				n, pred.Throughput, pred.Speedup(x1), pred.ResponseTime*1000,
				pred.AbortRate*100, role.UtilCPU*100, role.UtilDisk*100)
		}
		w.Flush()
		if *target > 0 {
			n, pred, ok := repro.CapacityPlan(params, d, *target, *replicas)
			if ok {
				fmt.Printf("capacity plan: %d replicas reach %.1f tps (target %.1f)\n",
					n, pred.Throughput, *target)
			} else {
				fmt.Printf("capacity plan: target %.1f tps NOT reachable within %d replicas (max %.1f)\n",
					*target, *replicas, pred.Throughput)
			}
		}
		fmt.Println()
	}
}
