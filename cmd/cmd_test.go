// Package cmd_test builds and exercises every command-line binary end
// to end: each tool is compiled once into a temporary directory and
// run with representative flags, checking output and exit codes. These
// are the regression tests that keep the user-facing entry points of
// the reproduction working.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAll compiles the four binaries once per test binary run.
func buildAll(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"predict", "profiledb", "experiments", "replicadb"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./"+name)
		cmd.Dir = "." // cmd/ directory
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins
}

// run executes a built binary and returns combined output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// runExpectFailure executes a binary expecting a non-zero exit.
func runExpectFailure(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s unexpectedly succeeded:\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)

	t.Run("predict basic", func(t *testing.T) {
		out := run(t, bins["predict"], "-mix", "tpcw-shopping", "-design", "mm", "-replicas", "4")
		if !strings.Contains(out, "multi-master") || !strings.Contains(out, "throughput") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("predict capacity plan", func(t *testing.T) {
		out := run(t, bins["predict"], "-mix", "tpcw-ordering", "-design", "sm", "-replicas", "8", "-target", "1000")
		if !strings.Contains(out, "NOT reachable") {
			t.Fatalf("impossible target not reported:\n%s", out)
		}
	})

	t.Run("predict rejects unknown mix", func(t *testing.T) {
		out := runExpectFailure(t, bins["predict"], "-mix", "nope")
		if !strings.Contains(out, "unknown mix") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("profiledb to predict params handoff", func(t *testing.T) {
		params := filepath.Join(t.TempDir(), "params.json")
		out := run(t, bins["profiledb"], "-mix", "rubis-bidding", "-out", params)
		if !strings.Contains(out, "L(1) measured") {
			t.Fatalf("output:\n%s", out)
		}
		if _, err := os.Stat(params); err != nil {
			t.Fatal(err)
		}
		out = run(t, bins["predict"], "-params", params, "-design", "mm", "-replicas", "4")
		if !strings.Contains(out, "RUBiS bidding") {
			t.Fatalf("params file did not carry the mix:\n%s", out)
		}
	})

	t.Run("experiments list and quick run", func(t *testing.T) {
		out := run(t, bins["experiments"], "-list")
		for _, id := range []string{"fig6", "fig14", "certifier", "wan", "ablation-hotspot"} {
			if !strings.Contains(out, id) {
				t.Fatalf("-list missing %s:\n%s", id, out)
			}
		}
		out = run(t, bins["experiments"], "-exp", "table2,network")
		if !strings.Contains(out, "TPC-W parameters") || !strings.Contains(out, "Gbit") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("experiments csv", func(t *testing.T) {
		out := run(t, bins["experiments"], "-exp", "fig6", "-quick", "-format", "csv")
		if !strings.HasPrefix(out, "figure,series,replicas,measured,predicted,rel_error") {
			t.Fatalf("csv output:\n%s", out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 9 {
			t.Fatalf("too few csv rows:\n%s", out)
		}
	})

	t.Run("experiments rejects unknown id", func(t *testing.T) {
		out := runExpectFailure(t, bins["experiments"], "-exp", "fig99")
		if !strings.Contains(out, "unknown experiment") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("replicadb mm with paxos", func(t *testing.T) {
		out := run(t, bins["replicadb"], "-design", "mm", "-replicas", "3", "-paxos",
			"-clients", "4", "-txns", "20")
		if !strings.Contains(out, "all replicas identical") {
			t.Fatalf("convergence not reported:\n%s", out)
		}
		if !strings.Contains(out, "certifier:") {
			t.Fatalf("certifier stats missing:\n%s", out)
		}
	})

	t.Run("replicadb sm", func(t *testing.T) {
		out := run(t, bins["replicadb"], "-design", "sm", "-replicas", "3",
			"-mix", "rubis-bidding", "-clients", "4", "-txns", "20")
		if !strings.Contains(out, "all replicas identical") {
			t.Fatalf("output:\n%s", out)
		}
	})
}
