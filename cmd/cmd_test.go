// Package cmd_test builds and exercises every command-line binary end
// to end: each tool is compiled once into a temporary directory and
// run with representative flags, checking output and exit codes. These
// are the regression tests that keep the user-facing entry points of
// the reproduction working.
package cmd_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/router"
)

// buildAll compiles the four binaries once per test binary run.
func buildAll(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"predict", "profiledb", "experiments", "replicadb"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./"+name)
		cmd.Dir = "." // cmd/ directory
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	return bins
}

// run executes a built binary and returns combined output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// runExpectFailure executes a binary expecting a non-zero exit.
func runExpectFailure(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s unexpectedly succeeded:\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)

	t.Run("predict basic", func(t *testing.T) {
		out := run(t, bins["predict"], "-mix", "tpcw-shopping", "-design", "mm", "-replicas", "4")
		if !strings.Contains(out, "multi-master") || !strings.Contains(out, "throughput") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("predict capacity plan", func(t *testing.T) {
		out := run(t, bins["predict"], "-mix", "tpcw-ordering", "-design", "sm", "-replicas", "8", "-target", "1000")
		if !strings.Contains(out, "NOT reachable") {
			t.Fatalf("impossible target not reported:\n%s", out)
		}
	})

	t.Run("predict rejects unknown mix", func(t *testing.T) {
		out := runExpectFailure(t, bins["predict"], "-mix", "nope")
		if !strings.Contains(out, "unknown mix") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("profiledb to predict params handoff", func(t *testing.T) {
		params := filepath.Join(t.TempDir(), "params.json")
		out := run(t, bins["profiledb"], "-mix", "rubis-bidding", "-out", params)
		if !strings.Contains(out, "L(1) measured") {
			t.Fatalf("output:\n%s", out)
		}
		if _, err := os.Stat(params); err != nil {
			t.Fatal(err)
		}
		out = run(t, bins["predict"], "-params", params, "-design", "mm", "-replicas", "4")
		if !strings.Contains(out, "RUBiS bidding") {
			t.Fatalf("params file did not carry the mix:\n%s", out)
		}
	})

	t.Run("experiments list and quick run", func(t *testing.T) {
		out := run(t, bins["experiments"], "-list")
		for _, id := range []string{"fig6", "fig14", "certifier", "wan", "ablation-hotspot"} {
			if !strings.Contains(out, id) {
				t.Fatalf("-list missing %s:\n%s", id, out)
			}
		}
		out = run(t, bins["experiments"], "-exp", "table2,network")
		if !strings.Contains(out, "TPC-W parameters") || !strings.Contains(out, "Gbit") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("experiments csv", func(t *testing.T) {
		out := run(t, bins["experiments"], "-exp", "fig6", "-quick", "-format", "csv")
		if !strings.HasPrefix(out, "figure,series,replicas,measured,predicted,rel_error") {
			t.Fatalf("csv output:\n%s", out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 9 {
			t.Fatalf("too few csv rows:\n%s", out)
		}
	})

	t.Run("experiments rejects unknown id", func(t *testing.T) {
		out := runExpectFailure(t, bins["experiments"], "-exp", "fig99")
		if !strings.Contains(out, "unknown experiment") {
			t.Fatalf("output:\n%s", out)
		}
	})

	t.Run("replicadb mm with paxos", func(t *testing.T) {
		out := run(t, bins["replicadb"], "-design", "mm", "-replicas", "3", "-paxos",
			"-clients", "4", "-txns", "20")
		if !strings.Contains(out, "all replicas identical") {
			t.Fatalf("convergence not reported:\n%s", out)
		}
		if !strings.Contains(out, "certifier:") {
			t.Fatalf("certifier stats missing:\n%s", out)
		}
	})

	t.Run("replicadb sm", func(t *testing.T) {
		out := run(t, bins["replicadb"], "-design", "sm", "-replicas", "3",
			"-mix", "rubis-bidding", "-clients", "4", "-txns", "20")
		if !strings.Contains(out, "all replicas identical") {
			t.Fatalf("output:\n%s", out)
		}
	})
}

// runExpectUsage executes a binary expecting exit code 2 (flag
// validation failure) and returns combined output.
func runExpectUsage(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s unexpectedly succeeded:\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("%s %s: want exit 2, got %v:\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestReplicadbFlagValidation pins the up-front flag-combination
// checks: invalid invocations exit 2 with a usage message instead of
// failing deep in setup.
func TestReplicadbFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)
	bin := bins["replicadb"]
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"paxos with sm", []string{"-design", "sm", "-paxos"}, "-paxos requires -design mm"},
		{"groupcommit with sm", []string{"-design", "sm", "-groupcommit"}, "-groupcommit requires -design mm"},
		{"unknown design", []string{"-design", "nope"}, "unknown design"},
		{"zero replicas", []string{"-replicas", "0"}, "-replicas must be >= 1"},
		{"unknown mix", []string{"-mix", "nope"}, "unknown mix"},
		{"serve without listen", []string{"serve", "-design", "mm", "-peers", "a:1,b:2"}, "requires -listen"},
		{"serve without peers", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0"}, "requires -peers"},
		{"serve id out of range", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1,b:2", "-id", "5"}, "out of range"},
		{"serve groupcommit on sm", []string{"serve", "-design", "sm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-groupcommit"}, "require -design mm"},
		{"bench without servers", []string{"bench", "-design", "mm"}, "requires -servers"},
		{"join with peers", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-join", "b:2"}, "mutually exclusive"},
		{"join with sm", []string{"serve", "-design", "sm", "-listen", "127.0.0.1:0", "-join", "b:2"}, "-join requires -design mm"},
		{"autoscale on joiner", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-join", "b:2", "-autoscale"}, "on the primary"},
		{"autoscale on replica", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1,b:2", "-id", "1", "-autoscale"}, "-autoscale requires"},
		{"autoscale bad bounds", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-autoscale", "-min", "3", "-max", "2"}, "min <= max"},
		{"bench watch on sm", []string{"bench", "-design", "sm", "-servers", "a:1", "-watch"}, "-watch requires -design mm"},
		{"fsync without wal-dir", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-fsync"}, "-fsync requires -wal-dir"},
		{"serve paxos with sm", []string{"serve", "-design", "sm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-paxos"}, "-paxos requires -design mm"},
		{"serve paxos with join", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-join", "b:2", "-paxos"}, "-paxos and -join are mutually exclusive"},
		{"serve paxos with autoscale", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-paxos", "-autoscale"}, "not supported with -paxos"},
		{"serve paxos bad elect-timeout", []string{"serve", "-design", "mm", "-listen", "127.0.0.1:0", "-peers", "a:1", "-paxos", "-elect-timeout", "-1s"}, "-elect-timeout must be positive"},
		{"unknown mode", []string{"frobnicate"}, "unknown mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runExpectUsage(t, bin, tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// reservePorts grabs n distinct loopback addresses by binding and
// releasing listeners; the tiny reuse race is acceptable in tests.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// waitReachable polls an address until something accepts or the
// deadline passes.
func waitReachable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

// statusOut mirrors the fields of `replicadb status -json` the e2e
// tests assert on; unmatched JSON keys are ignored by encoding/json,
// so the report may grow without breaking these tests.
type statusOut struct {
	Design     string `json:"design"`
	Leader     int64  `json:"leader"`
	Epoch      int64  `json:"epoch"`
	MaxApplied int64  `json:"max_applied"`
	Up         int    `json:"replicas_up"`
	Polled     int    `json:"replicas_polled"`
	Replicas   []struct {
		Addr     string `json:"addr"`
		ID       int64  `json:"id"`
		Shard    int64  `json:"shard"`
		Leading  bool   `json:"leading"`
		Applied  int64  `json:"applied"`
		Behind   int64  `json:"versions_behind"`
		LagCount int64  `json:"repl_lag_count"`
		Error    string `json:"error"`
	} `json:"replicas"`
	StageMeanUs map[string]float64 `json:"stage_mean_us"`
}

// statusJSON runs `replicadb status -json` against the given servers
// and decodes the report.
func statusJSON(t *testing.T, bin, servers string, extra ...string) statusOut {
	t.Helper()
	args := append([]string{"status", "-design", "mm", "-servers", servers, "-json"}, extra...)
	out := run(t, bin, args...)
	var rep statusOut
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("status -json did not emit JSON: %v\n%s", err, out)
	}
	return rep
}

// httpGet fetches one debug endpoint from a node's metrics listener.
func httpGet(t *testing.T, url string) (string, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestReplicadbCrashRecovery is the durability acceptance path across
// OS processes: a 2-replica multi-master cluster serves with WALs, a
// bench drives committed load, replica 1 is SIGKILLed, more commits
// land on the survivor, and the restarted process must announce WAL
// recovery and converge row-for-row with the replica that never died —
// via WAL replay plus FetchSince, with no join/snapshot transfer (the
// restarted invocation uses -id/-peers, which has no snapshot path).
func TestReplicadbCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)
	bin := bins["replicadb"]
	addrs := reservePorts(t, 2)
	peers := strings.Join(addrs, ",")
	walDirs := []string{t.TempDir(), t.TempDir()}

	logDir := t.TempDir()
	serve := func(i int, logName string) *exec.Cmd {
		logPath := filepath.Join(logDir, logName)
		logFile, err := os.Create(logPath)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, "serve",
			"-design", "mm",
			"-id", strconv.Itoa(i),
			"-listen", addrs[i],
			"-peers", peers,
			"-wal-dir", walDirs[i],
			"-fsync")
		cmd.Stdout, cmd.Stderr = logFile, logFile
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		logFile.Close()
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		waitReachable(t, addrs[i])
		return cmd
	}
	var procs [2]*exec.Cmd
	for i := range addrs {
		procs[i] = serve(i, fmt.Sprintf("replica%d.log", i))
	}

	run(t, bin, "bench", "-design", "mm", "-servers", peers,
		"-mix", "tpcw-shopping", "-clients", "4", "-txns", "10", "-factor", "500")

	// SIGKILL replica 1: no shutdown hooks, no flush — only the WAL.
	if err := procs[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[1].Wait()

	// The survivor keeps committing while replica 1 is down.
	run(t, bin, "bench", "-design", "mm", "-servers", addrs[0],
		"-mix", "tpcw-shopping", "-clients", "2", "-txns", "10", "-factor", "500",
		"-load=false", "-converge=false")

	// Restart replica 1 from its WAL and verify it announces recovery.
	serve(1, "replica1-restarted.log")
	restartLog := filepath.Join(logDir, "replica1-restarted.log")
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := os.ReadFile(restartLog)
		if strings.Contains(string(b), "resumed from WAL at version") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never announced WAL recovery:\n%s", b)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Row-for-row equality across both replicas, checked over the wire
	// after a little more traffic lands on the recovered node too.
	out := run(t, bin, "bench", "-design", "mm", "-servers", peers,
		"-mix", "tpcw-shopping", "-clients", "2", "-txns", "5", "-factor", "500",
		"-load=false")
	if !strings.Contains(out, "all 2 replicas identical") {
		t.Fatalf("post-recovery convergence failed:\n%s", out)
	}
}

// TestReplicadbNetworkedCluster is the acceptance path end to end:
// a 3-replica multi-master cluster as 3 OS processes started via
// `replicadb serve`, a `replicadb bench` client driving a TPC-W mix
// over TCP, convergence verified over the wire, `replicadb status`
// reporting leadership and replication lag, and every node's /metrics
// exposition scraped and validated.
func TestReplicadbNetworkedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)
	bin := bins["replicadb"]
	ports := reservePorts(t, 6)
	addrs, metricsAddrs := ports[:3], ports[3:]
	peers := strings.Join(addrs, ",")

	var procs []*exec.Cmd
	for i, addr := range addrs {
		cmd := exec.Command(bin, "serve",
			"-design", "mm",
			"-id", strconv.Itoa(i),
			"-listen", addr,
			"-peers", peers,
			"-metrics", metricsAddrs[i])
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		procs = append(procs, cmd)
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		waitReachable(t, addr)
	}

	out := run(t, bin, "bench",
		"-design", "mm",
		"-servers", peers,
		"-mix", "tpcw-shopping",
		"-clients", "4", "-txns", "15", "-factor", "500")
	for _, want := range []string{"over TCP", "all 3 replicas identical", "latency: p50="} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}

	// `replicadb status -json` against the live cluster: without Paxos,
	// node 0 hosts certification, every replica has applied the bench's
	// versions, and the commit-to-visible lag histograms have counted
	// remotely applied writesets.
	rep := statusJSON(t, bin, peers)
	if rep.Design != "mm" || rep.Up != 3 || len(rep.Replicas) != 3 {
		t.Fatalf("status = %+v", rep)
	}
	if rep.Leader != 0 {
		t.Fatalf("leader = %d, want the static certifier host 0", rep.Leader)
	}
	if rep.MaxApplied <= 0 {
		t.Fatalf("max_applied = %d after a committed bench", rep.MaxApplied)
	}
	var lagged int
	for _, r := range rep.Replicas {
		if r.Error != "" {
			t.Fatalf("replica %s down: %s", r.Addr, r.Error)
		}
		if r.Behind < 0 || r.Applied <= 0 {
			t.Fatalf("replica %s apply state = %+v", r.Addr, r)
		}
		if r.LagCount > 0 {
			lagged++
		}
	}
	if lagged == 0 {
		t.Fatalf("no replica observed replication lag: %+v", rep.Replicas)
	}
	if len(rep.StageMeanUs) == 0 {
		t.Fatalf("status report missing stage means: %+v", rep)
	}

	// Scrape /metrics from every node and validate the exposition
	// parses; the lag histogram family must exist everywhere and have
	// counted applies on at least one node. The merged cluster view must
	// also carry the summed counts.
	var merged obs.RegistrySnapshot
	var scrapedLag float64
	for i, maddr := range metricsAddrs {
		body, ctype := httpGet(t, "http://"+maddr+"/metrics")
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("node %d /metrics content-type = %q", i, ctype)
		}
		snap, err := obs.ParseText(strings.NewReader(body))
		if err != nil {
			t.Fatalf("node %d exposition invalid: %v\n%s", i, err, body)
		}
		f := snap.Family("replicadb_replication_lag_seconds")
		if f == nil || f.Type != "histogram" {
			t.Fatalf("node %d lag family = %+v", i, f)
		}
		for _, sm := range f.Samples {
			if sm.Suffix == "_count" {
				scrapedLag += sm.Value
			}
		}
		if err := merged.Merge(snap); err != nil {
			t.Fatalf("merging node %d scrape: %v", i, err)
		}
	}
	if scrapedLag == 0 {
		t.Fatal("no node's scraped lag histogram counted an apply")
	}
	mf := merged.Family("replicadb_replication_lag_seconds")
	var mergedLag float64
	for _, sm := range mf.Samples {
		if sm.Suffix == "_count" {
			mergedLag += sm.Value
		}
	}
	if mergedLag != scrapedLag {
		t.Fatalf("merged lag count = %v, want %v", mergedLag, scrapedLag)
	}

	// The event journal endpoint answers machine-readable JSON.
	body, ctype := httpGet(t, "http://"+metricsAddrs[0]+"/debug/events")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/events content-type = %q", ctype)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("/debug/events not JSON:\n%s", body)
	}

	// Graceful shutdown on SIGTERM for one replica.
	if err := procs[2].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- procs[2].Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("replica 2 did not exit on SIGTERM")
	}
}

// TestReplicadbPaxosLeaderKill is the "kill the leader" recipe from
// the README as a test: a 3-process cluster with `-paxos -wal-dir
// -fsync` elects a certification leader, serves a bench, loses the
// leader to SIGKILL, elects a successor, and keeps serving with the
// two survivors convergent.
func TestReplicadbPaxosLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)
	bin := bins["replicadb"]
	ports := reservePorts(t, 6)
	addrs, metricsAddrs := ports[:3], ports[3:]
	peers := strings.Join(addrs, ",")

	logDir := t.TempDir()
	logPath := func(i int) string { return filepath.Join(logDir, fmt.Sprintf("replica%d.log", i)) }
	var procs [3]*exec.Cmd
	for i, addr := range addrs {
		logFile, err := os.Create(logPath(i))
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, "serve",
			"-design", "mm",
			"-id", strconv.Itoa(i),
			"-listen", addr,
			"-peers", peers,
			"-metrics", metricsAddrs[i],
			"-paxos",
			"-elect-timeout", "300ms",
			"-wal-dir", t.TempDir(),
			"-fsync")
		cmd.Stdout, cmd.Stderr = logFile, logFile
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		logFile.Close()
		procs[i] = cmd
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		waitReachable(t, addr)
	}

	// One process must announce leadership.
	leaderOf := func(skip int) int {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			for i := range procs {
				if i == skip {
					continue
				}
				b, _ := os.ReadFile(logPath(i))
				if strings.Contains(string(b), "this node leads certification") {
					return i
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatal("no process announced certification leadership")
		return -1
	}
	lead := leaderOf(-1)

	run(t, bin, "bench", "-design", "mm", "-servers", peers,
		"-mix", "tpcw-shopping", "-clients", "4", "-txns", "10", "-factor", "500")

	// SIGKILL the leader: no shutdown hooks — the survivors must elect.
	if err := procs[lead].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[lead].Wait()
	// Truncating nothing: the old leader's log keeps its banner, so scan
	// only the survivors for a fresh leadership announcement.
	newLead := leaderOf(lead)
	if newLead == lead {
		t.Fatalf("dead leader %d announced leadership again", lead)
	}

	var survivors []string
	for i, a := range addrs {
		if i != lead {
			survivors = append(survivors, a)
		}
	}
	out := run(t, bin, "bench", "-design", "mm", "-servers", strings.Join(survivors, ","),
		"-mix", "tpcw-shopping", "-clients", "4", "-txns", "10", "-factor", "500",
		"-load=false")
	if !strings.Contains(out, "all 2 replicas identical") {
		t.Fatalf("post-failover convergence failed:\n%s", out)
	}

	// `replicadb status -json` against the survivors must report the
	// new leader under a fresh election epoch.
	rep := statusJSON(t, bin, strings.Join(survivors, ","))
	if rep.Up != 2 {
		t.Fatalf("replicas_up = %d after losing one of three, want 2", rep.Up)
	}
	if rep.Leader != int64(newLead) {
		t.Fatalf("status leader = %d, want re-elected node %d", rep.Leader, newLead)
	}
	if rep.Epoch < 1 {
		t.Fatalf("epoch = %d after a re-election, want >= 1", rep.Epoch)
	}
	for _, r := range rep.Replicas {
		if r.Error == "" && r.ID == int64(lead) {
			t.Fatalf("dead leader %d still answering status: %+v", lead, r)
		}
	}

	// The new leader's event journal must have recorded its own
	// election, visible on /debug/events.
	events, ctype := httpGet(t, "http://"+metricsAddrs[newLead]+"/debug/events")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/events content-type = %q", ctype)
	}
	if !strings.Contains(events, "leader_elected") {
		t.Fatalf("new leader's journal has no leader_elected event:\n%s", events)
	}
}

// TestReplicadbShardedCluster is the horizontal-scaling acceptance
// path across OS processes: two shard groups of two mm replicas each
// (four `replicadb serve -shard i -shards 2` processes with fsync'd
// WALs), fronted in-test by the router over pooled clients. Cross-shard
// transactions commit through 2PC over the wire; `status -json` reports
// each replica's shard; one group's certifier-hosting primary is
// SIGKILLed mid-deployment and restarted from its WAL, after which
// cross-shard commits resume and all four replicas converge.
func TestReplicadbShardedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildAll(t)
	bin := bins["replicadb"]
	addrs := reservePorts(t, 4)
	groupAddrs := [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}}
	walDirs := make([]string, 4)
	for i := range walDirs {
		walDirs[i] = t.TempDir()
	}
	logDir := t.TempDir()

	serve := func(g, i int, logName string) *exec.Cmd {
		logFile, err := os.Create(filepath.Join(logDir, logName))
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, "serve",
			"-design", "mm",
			"-id", strconv.Itoa(i),
			"-listen", groupAddrs[g][i],
			"-peers", strings.Join(groupAddrs[g], ","),
			"-shard", strconv.Itoa(g),
			"-shards", "2",
			"-wal-dir", walDirs[2*g+i],
			"-fsync")
		cmd.Stdout, cmd.Stderr = logFile, logFile
		if err := cmd.Start(); err != nil {
			t.Fatalf("start group %d replica %d: %v", g, i, err)
		}
		logFile.Close()
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		waitReachable(t, groupAddrs[g][i])
		return cmd
	}
	var procs [2][2]*exec.Cmd
	for g := 0; g < 2; g++ {
		for i := 0; i < 2; i++ {
			procs[g][i] = serve(g, i, fmt.Sprintf("g%dr%d.log", g, i))
		}
	}

	// Router over one pooled client per group — the servers are real
	// processes; only the driver is in-test.
	var groups []router.Group
	for g := 0; g < 2; g++ {
		cl, err := client.New(client.Options{Servers: groupAddrs[g], Design: "mm"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		groups = append(groups, cl)
	}
	r, err := router.New(1, groups)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateTable("item"); err != nil {
		t.Fatal(err)
	}
	if err := r.Load("item", 64, func(row int64) string {
		return fmt.Sprintf("load-%d", row)
	}); err != nil {
		t.Fatal(err)
	}
	// One owned row per group for the cross-shard pairs.
	rows := map[int]int64{}
	for row := int64(0); row < 64; row++ {
		g := r.Map().Locate("item", row)
		if _, ok := rows[g]; !ok {
			rows[g] = row
		}
	}

	crossCommit := func(tag string) error {
		txn, err := r.BeginUpdate()
		if err != nil {
			return err
		}
		if err := txn.Write("item", rows[0], tag+"-0"); err != nil {
			txn.Abort()
			return err
		}
		if err := txn.Write("item", rows[1], tag+"-1"); err != nil {
			txn.Abort()
			return err
		}
		return txn.Commit()
	}
	for i := 0; i < 5; i++ {
		if err := crossCommit(fmt.Sprintf("pre%d", i)); err != nil {
			t.Fatalf("cross-shard commit %d: %v", i, err)
		}
	}

	// The status dashboard reports each replica's shard (wire v6
	// StatsOK.ShardID).
	rep := statusJSON(t, bin, strings.Join(groupAddrs[1], ","))
	for _, row := range rep.Replicas {
		if row.Error == "" && row.Shard != 1 {
			t.Fatalf("group 1 replica %s reports shard %d, want 1", row.Addr, row.Shard)
		}
	}

	// SIGKILL group 1's certifier-hosting primary: its 2PC participant
	// state is only in the WAL now.
	if err := procs[1][0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[1][0].Wait()

	// A cross-shard transaction against the dead participant must fail
	// cleanly — explicit abort or unknown outcome, never a false ack.
	if err := crossCommit("while-down"); err == nil {
		t.Fatal("cross-shard commit succeeded with group 1's primary dead")
	}

	// Restart the primary from its WAL.
	serve(1, 0, "g1r0-restarted.log")
	restartLog := filepath.Join(logDir, "g1r0-restarted.log")
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := os.ReadFile(restartLog)
		if strings.Contains(string(b), "resumed from WAL at version") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted primary never announced WAL recovery:\n%s", b)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Cross-shard commits resume (the pooled client redials the
	// restarted primary; retry while it settles).
	deadline = time.Now().Add(15 * time.Second)
	for i := 0; ; i++ {
		err := crossCommit(fmt.Sprintf("post%d", i))
		if err == nil && i >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-shard commits never resumed: %v", err)
		}
		if err != nil {
			time.Sleep(200 * time.Millisecond)
		}
	}

	// All four replicas converge on the routed state — the aborted
	// while-down fragment must be absent everywhere.
	r.Sync()
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		t.Fatal(err)
	}
	dump, err := r.TableDump(0, "item")
	if err != nil {
		t.Fatal(err)
	}
	for row, v := range dump {
		if strings.HasPrefix(v, "while-down") {
			t.Fatalf("aborted cross-shard fragment leaked at row %d: %q", row, v)
		}
	}
}
