// Command profiledb runs the §4 standalone-profiling pipeline: it
// plays the calibration workloads against the simulated standalone
// database, derives every model parameter via the Utilization Law, and
// prints them next to the ground-truth table values — plus a captured
// transaction-log excerpt to show the statement-log format the
// methodology consumes.
//
// Usage:
//
//	profiledb -mix tpcw-shopping
//	profiledb -mix rubis-bidding -seed 7 -log 10
//	profiledb -mix tpcw-ordering -out params.json   # feed cmd/predict -params
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		mixID    = flag.String("mix", "tpcw-shopping", "workload mix id")
		seed     = flag.Uint64("seed", 1, "profiling seed")
		logLines = flag.Int("log", 0, "also print the first N lines of the captured statement log")
		outFile  = flag.String("out", "", "write the measured parameters as JSON for cmd/predict -params")
	)
	flag.Parse()

	mix, ok := workload.ByID(*mixID)
	if !ok {
		fmt.Fprintf(os.Stderr, "profiledb: unknown mix %q\n", *mixID)
		os.Exit(2)
	}

	fmt.Printf("profiling %s on the standalone system...\n\n", mix)
	params, rep, err := profiler.Profile(mix, profiler.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "parameter\tmeasured\tground truth\terror")
	row := func(name string, got, want float64, scale float64, unit string) {
		fmt.Fprintf(w, "%s\t%.2f %s\t%.2f %s\t%.1f%%\n",
			name, got*scale, unit, want*scale, unit,
			stats.RelativeError(got, want)*100)
	}
	row("rc CPU", params.Mix.RC[workload.CPU], mix.RC[workload.CPU], 1000, "ms")
	row("rc disk", params.Mix.RC[workload.Disk], mix.RC[workload.Disk], 1000, "ms")
	if mix.Pw > 0 {
		row("wc CPU", params.Mix.WC[workload.CPU], mix.WC[workload.CPU], 1000, "ms")
		row("wc disk", params.Mix.WC[workload.Disk], mix.WC[workload.Disk], 1000, "ms")
		row("ws CPU", params.Mix.WS[workload.CPU], mix.WS[workload.CPU], 1000, "ms")
		row("ws disk", params.Mix.WS[workload.Disk], mix.WS[workload.Disk], 1000, "ms")
	}
	row("Pr", params.Mix.Pr, mix.Pr, 100, "%")
	row("Pw", params.Mix.Pw, mix.Pw, 100, "%")
	w.Flush()

	fmt.Printf("\nL(1) measured: %.1f ms (update response time on standalone)\n", params.L1*1000)
	fmt.Printf("A1 measured:   %.4f%% (aborted update attempts)\n", params.Mix.A1*100)
	fmt.Printf("log counts:    %d read-only, %d update transactions over %d statements\n",
		rep.TraceCounts.ReadOnlyTxns, rep.TraceCounts.UpdateTxns, rep.TraceCounts.Statements)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
			os.Exit(1)
		}
		if err := core.WriteParams(f, params); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote measured parameters to %s\n", *outFile)
	}

	if *logLines > 0 {
		cat, err := workload.CatalogFor(mix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ncaptured statement log (first %d lines):\n", *logLines)
		tr := trace.Generate(cat, mix, mix.Clients, 50, *seed)
		if len(tr.Entries) > *logLines {
			tr.Entries = tr.Entries[:*logLines]
		}
		if err := trace.Encode(os.Stdout, tr); err != nil {
			fmt.Fprintf(os.Stderr, "profiledb: %v\n", err)
			os.Exit(1)
		}
	}
}
