package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// matrixCell is one configuration point of the scaling matrix: a fresh
// loopback cluster booted with the cell's knobs and driven with the
// shared workload.
type matrixCell struct {
	ApplyWorkers int     `json:"apply_workers"`
	Pipeline     bool    `json:"pipeline"`
	Compress     bool    `json:"compress"`
	Clients      int     `json:"clients"`
	Commits      int64   `json:"commits"`
	Aborts       int64   `json:"aborts"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	TPS          float64 `json:"tps"`
	UpdateP50Ms  float64 `json:"update_p50_ms"`
	UpdateP99Ms  float64 `json:"update_p99_ms"`
	Converged    bool    `json:"converged"`
}

// wireBytes compares the bytes-on-wire of one propagation stream (the
// full certified-record log of a matrix run) encoded as v4 flat
// records, v5 delta records, and v5 delta records with a DEFLATE body.
type wireBytes struct {
	Records      int   `json:"records"`
	V4Bytes      int64 `json:"v4_bytes"`
	V5Bytes      int64 `json:"v5_bytes"`
	V5FlateBytes int64 `json:"v5_flate_bytes"`
	// Reduction ratios relative to the v4 wire shape.
	V4OverV5      float64 `json:"v4_over_v5"`
	V4OverV5Flate float64 `json:"v4_over_v5_flate"`
}

// matrixReport is the BENCH_PR9.json document: every cell plus the
// propagation-stream byte comparison and enough context to re-run it.
type matrixReport struct {
	When          string       `json:"when"`
	Mix           string       `json:"mix"`
	Clients       int          `json:"clients"`
	TxnsPerClient int          `json:"txns_per_client"`
	Factor        int          `json:"factor"`
	Seed          uint64       `json:"seed"`
	Replicas      int          `json:"replicas"`
	Shards        int          `json:"shards"` // sidb row partitions (compile-time constant)
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Note          string       `json:"note"`
	Cells         []matrixCell `json:"cells"`
	Propagation   wireBytes    `json:"propagation"`
}

// matrixReplicas is the loopback cluster size each cell boots: a
// certifier-hosting primary plus two elastic joiners.
const matrixReplicas = 3

// matrixMain runs the scaling matrix: apply-workers x pipelining x
// compression, each cell on a fresh loopback cluster, plus the
// propagation bytes-on-wire comparison from the final cell's record
// stream.
func matrixMain(fs *flag.FlagSet, mixID string, clients, txns, factor int, seed uint64, out string) {
	mix := mustMix(fs, mixID)
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		fatal("%v", err)
	}

	workerDims := []int{1, runtime.GOMAXPROCS(0)}
	if workerDims[1] <= workerDims[0] {
		workerDims = workerDims[:1]
	}
	rep := matrixReport{
		When:          time.Now().Format(time.RFC3339),
		Mix:           mix.ID(),
		Clients:       clients,
		TxnsPerClient: txns,
		Factor:        factor,
		Seed:          seed,
		Replicas:      matrixReplicas,
		Shards:        32,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Note: "cells share one process; apply-worker scaling and pipelining gains " +
			"need a multicore host (GOMAXPROCS > 2) to separate from noise",
	}

	var lastAddr string
	var lastCluster func()
	for _, workers := range workerDims {
		for _, pipe := range []bool{false, true} {
			for _, compress := range []bool{false, true} {
				fmt.Printf("matrix: apply-workers=%d pipeline=%v compress=%v ... ", workers, pipe, compress)
				cell, primaryAddr, closeCluster := runMatrixCell(cat, mix, workers, pipe, compress, clients, txns, factor, seed)
				rep.Cells = append(rep.Cells, cell)
				fmt.Printf("%.0f tps\n", cell.TPS)
				// Keep the last cluster alive: its record stream feeds the
				// propagation byte comparison below.
				if lastCluster != nil {
					lastCluster()
				}
				lastAddr, lastCluster = primaryAddr, closeCluster
			}
		}
	}
	rep.Propagation = measurePropagation(lastAddr)
	if lastCluster != nil {
		lastCluster()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("json: %v", err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("matrix: wrote %d cells to %s (v4/v5+flate propagation ratio %.2fx)\n",
			len(rep.Cells), out, rep.Propagation.V4OverV5Flate)
	}
}

// runMatrixCell boots a fresh loopback cluster with the cell's knobs,
// loads the schema, drives the workload, and verifies convergence. It
// returns the cell, the primary's address, and a closer; the cluster
// stays up so the caller can harvest its propagation log.
func runMatrixCell(cat workload.Catalog, mix workload.Mix, workers int, pipe, compress bool,
	clients, txns, factor int, seed uint64) (matrixCell, string, func()) {
	cell := matrixCell{
		ApplyWorkers: workers,
		Pipeline:     pipe,
		Compress:     compress,
		Clients:      clients,
	}
	primary, err := server.New(server.Options{
		Design:       "mm",
		ID:           0,
		Listen:       "127.0.0.1:0",
		GroupCommit:  true,
		ApplyWorkers: workers,
		NoCompress:   !compress,
	})
	if err != nil {
		fatal("matrix: primary: %v", err)
	}
	primary.Start()
	servers := []*server.Server{primary}
	closeAll := func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
	}

	// Load before the joiners arrive; they catch up via the join-time
	// snapshot instead of replaying the load through propagation.
	loader, err := client.New(client.Options{Servers: []string{primary.Addr()}, Design: "mm"})
	if err != nil {
		closeAll()
		fatal("matrix: loader: %v", err)
	}
	err = repl.LoadCatalog(loader, cat, factor)
	loader.Close()
	if err != nil {
		closeAll()
		fatal("matrix: load: %v", err)
	}
	addrs := []string{primary.Addr()}
	for i := 1; i < matrixReplicas; i++ {
		rep, err := server.New(server.Options{
			Design:       "mm",
			Listen:       "127.0.0.1:0",
			Join:         true,
			Primary:      primary.Addr(),
			ApplyWorkers: workers,
			NoCompress:   !compress,
		})
		if err != nil {
			closeAll()
			fatal("matrix: joiner: %v", err)
		}
		rep.Start()
		servers = append(servers, rep)
		addrs = append(addrs, rep.Addr())
	}

	cl, err := client.New(client.Options{Servers: addrs, Design: "mm", Pipeline: pipe})
	if err != nil {
		closeAll()
		fatal("matrix: client: %v", err)
	}
	start := time.Now()
	res := repl.Drive(cl, cat, mix, clients, txns, factor, seed)
	elapsed := time.Since(start)
	if res.Errors > 0 {
		closeAll()
		fatal("matrix: drive errors: %s", res.FirstError)
	}
	if err := repl.CheckConvergence(cl, tableNames(cat)); err != nil {
		closeAll()
		fatal("matrix: convergence: %v", err)
	}
	cl.Close()

	cell.Commits = res.Commits
	cell.Aborts = res.Aborts
	cell.ElapsedSec = elapsed.Seconds()
	cell.TPS = float64(res.Commits) / elapsed.Seconds()
	cell.UpdateP50Ms = ms(res.UpdateLatency.Quantile(0.50))
	cell.UpdateP99Ms = ms(res.UpdateLatency.Quantile(0.99))
	cell.Converged = true
	return cell, primary.Addr(), closeAll
}

// countConn satisfies io.ReadWriter for a send-only wire.Conn: writes
// are counted and discarded, reads report EOF.
type countConn struct{ n int64 }

func (c *countConn) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }
func (c *countConn) Read([]byte) (int, error)    { return 0, io.EOF }

// measurePropagation pulls the full certified-record stream from the
// given primary and re-encodes it at protocol 4 (flat records), 5
// (delta + dictionary), and 5 with compression, counting the bytes
// each shape would put on the wire.
func measurePropagation(addr string) wireBytes {
	link := client.NewLink(addr, "mm", -1, 2*time.Second)
	defer link.Close()
	recs, err := link.FetchSince(0, 0)
	if err != nil {
		fatal("matrix: propagation fetch: %v", err)
	}
	frame := &wire.Records{Recs: make([]wire.Record, len(recs))}
	for i, r := range recs {
		frame.Recs[i] = wire.Record{Version: r.Version, WS: r.Writeset}
	}
	encodeAt := func(proto uint32, compress bool) int64 {
		var cc countConn
		conn := wire.NewConn(&cc)
		conn.SetProto(proto)
		frame.Compress = compress
		if err := conn.Send(frame); err != nil {
			fatal("matrix: encode at proto %d: %v", proto, err)
		}
		return cc.n
	}
	out := wireBytes{
		Records:      len(recs),
		V4Bytes:      encodeAt(4, false),
		V5Bytes:      encodeAt(5, false),
		V5FlateBytes: encodeAt(5, true),
	}
	if out.V5Bytes > 0 {
		out.V4OverV5 = float64(out.V4Bytes) / float64(out.V5Bytes)
	}
	if out.V5FlateBytes > 0 {
		out.V4OverV5Flate = float64(out.V4Bytes) / float64(out.V5FlateBytes)
	}
	return out
}
