package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/router"
	"repro/internal/server"
)

// shardCell is one configuration point of the shard-scaling matrix: a
// fresh hash-partitioned deployment of Groups replica groups on
// loopback, driven with a synthetic update workload whose cross-shard
// fraction is controlled exactly (disjoint vs mixed), so the fast-path
// cost of sharding and the 2PC tax are separable.
type shardCell struct {
	Groups    int     `json:"groups"`
	CrossFrac float64 `json:"cross_frac"`
	// Routed is false only for the baseline cell: the same workload on
	// the same one-group cluster driven DIRECTLY through the pooled
	// client, no router in the path. The 1-group routed cell against it
	// measures the fast-path tax of sharding-aware routing, which the
	// design holds at zero extra hops.
	Routed     bool    `json:"routed"`
	Clients    int     `json:"clients"`
	Commits    int64   `json:"commits"`
	CrossTxns  int64   `json:"cross_txns"` // committed transactions that spanned two groups
	Aborts     int64   `json:"aborts"`
	ElapsedSec float64 `json:"elapsed_sec"`
	TPS        float64 `json:"tps"`
	// SpeedupVs1 is this cell's TPS over the routed 1-group cell — the
	// horizontal write-scaling factor. For the routed 1-group cell
	// itself it is TPS over the unrouted baseline: the fast-path tax of
	// routing, which must stay ~1.0. On a single-CPU host all groups
	// share one core and the expected multi-group value is ~1.0
	// (equivalence), not ~Groups.
	SpeedupVs1 float64 `json:"speedup_vs_1_group"`
	Converged  bool    `json:"converged"`
}

// shardMatrixReport is the BENCH_PR10.json document.
type shardMatrixReport struct {
	When             string      `json:"when"`
	Clients          int         `json:"clients"`
	TxnsPerClient    int         `json:"txns_per_client"`
	Rows             int         `json:"rows"`
	Seed             uint64      `json:"seed"`
	ReplicasPerGroup int         `json:"replicas_per_group"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	Note             string      `json:"note"`
	Cells            []shardCell `json:"cells"`
}

// shardMatrixRows is the keyspace each cell partitions; large enough
// that write-write conflicts stay rare at the default client count.
const shardMatrixRows = 512

// shardMatrixReplicas is the per-group replica count each cell boots:
// a certifier-hosting primary plus one elastic joiner, so convergence
// within every group is exercised without doubling the process count
// of the 4-group cells.
const shardMatrixReplicas = 2

// shardMatrixMain runs the shard-count dimension of the scaling
// matrix: for every group count, a disjoint (single-shard only) cell
// and a mixed cell where crossFrac of the transactions write a second
// row owned by a different group and commit through 2PC over
// certification.
func shardMatrixMain(counts []int, crossFrac float64, clients, txns int, seed uint64, out string) {
	rep := shardMatrixReport{
		When:             time.Now().Format(time.RFC3339),
		Clients:          clients,
		TxnsPerClient:    txns,
		Rows:             shardMatrixRows,
		Seed:             seed,
		ReplicasPerGroup: shardMatrixReplicas,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Note: "cells share one process; horizontal scaling with group count " +
			"needs a multicore host (GOMAXPROCS >= groups) to separate from noise — " +
			"on one CPU the expected speedup is ~1.0 (equivalence) and the mixed " +
			"cells isolate the 2PC tax instead",
	}

	// A discarded warm-up cell first: the first cluster of the process
	// measures faster than the rest (cold heap, no GC debt), which
	// would flatter whichever cell ran first.
	fmt.Printf("matrix: warm-up (discarded) ... ")
	warm := runShardCell(1, 0, clients, txns/4+1, seed, false)
	fmt.Printf("%.0f tps\n", warm.TPS)

	// Baseline: one group, no router — the unsharded stack.
	fmt.Printf("matrix: baseline (unrouted, 1 group) ... ")
	baseline := bestShardCell(1, 0, clients, txns, seed, false)
	fmt.Printf("%.0f tps\n", baseline.TPS)
	rep.Cells = append(rep.Cells, baseline)

	base := make(map[float64]float64) // cross fraction -> 1-group routed TPS
	for _, n := range counts {
		for _, cross := range []float64{0, crossFrac} {
			if cross > 0 && n == 1 {
				// One group has no cross-shard pairs; the mixed cell's
				// baseline is the disjoint 1-group cell.
				continue
			}
			fmt.Printf("matrix: groups=%d cross=%.0f%% ... ", n, cross*100)
			cell := bestShardCell(n, cross, clients, txns, seed, true)
			if n == 1 {
				base[0] = cell.TPS
				base[crossFrac] = cell.TPS
				if baseline.TPS > 0 {
					cell.SpeedupVs1 = cell.TPS / baseline.TPS // routing tax
				}
			} else if b := base[cell.CrossFrac]; b > 0 {
				cell.SpeedupVs1 = cell.TPS / b
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("%.0f tps (%d cross-shard commits)\n", cell.TPS, cell.CrossTxns)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("json: %v", err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal("json: %v", err)
	}
	fmt.Printf("matrix: wrote %d shard cells to %s\n", len(rep.Cells), out)
}

// bestShardCell runs the cell twice and keeps the faster run: one
// shared CPU hosts every cluster of the sweep, and best-of-2 damps the
// scheduling noise that would otherwise dominate the cell-to-cell
// deltas. The counters reported are the kept run's.
func bestShardCell(n int, cross float64, clients, txns int, seed uint64, routed bool) shardCell {
	best := runShardCell(n, cross, clients, txns, seed, routed)
	if again := runShardCell(n, cross, clients, txns, seed+1, routed); again.TPS > best.TPS {
		best = again
	}
	return best
}

// runShardCell boots n shard groups of shardMatrixReplicas mm servers
// each on loopback, fronts them with the router over pooled clients,
// drives the synthetic workload, and verifies per-group convergence.
func runShardCell(n int, cross float64, clients, txns int, seed uint64, routed bool) shardCell {
	cell := shardCell{Groups: n, CrossFrac: cross, Clients: clients, Routed: routed}

	var servers []*server.Server
	closeAll := func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
	}
	var groups []router.Group
	var pools []*client.Client
	for g := 0; g < n; g++ {
		primary, err := server.New(server.Options{
			Design:      "mm",
			Listen:      "127.0.0.1:0",
			GroupCommit: true,
			ShardID:     g,
			ShardCount:  n,
		})
		if err != nil {
			closeAll()
			fatal("matrix: shard %d primary: %v", g, err)
		}
		primary.Start()
		servers = append(servers, primary)
		addrs := []string{primary.Addr()}
		for i := 1; i < shardMatrixReplicas; i++ {
			joiner, err := server.New(server.Options{
				Design:     "mm",
				Listen:     "127.0.0.1:0",
				Join:       true,
				Primary:    primary.Addr(),
				ShardID:    g,
				ShardCount: n,
			})
			if err != nil {
				closeAll()
				fatal("matrix: shard %d joiner: %v", g, err)
			}
			joiner.Start()
			servers = append(servers, joiner)
			addrs = append(addrs, joiner.Addr())
		}
		cl, err := client.New(client.Options{Servers: addrs, Design: "mm"})
		if err != nil {
			closeAll()
			fatal("matrix: shard %d client: %v", g, err)
		}
		pools = append(pools, cl)
		groups = append(groups, cl)
	}
	defer func() {
		for _, cl := range pools {
			cl.Close()
		}
		closeAll()
	}()

	r, err := router.New(1, groups)
	if err != nil {
		fatal("matrix: router: %v", err)
	}
	// The baseline cell drives the single group's client directly —
	// same workload, same cluster shape, no router in the path.
	var sys repl.System = r
	if !routed {
		sys = pools[0]
	}
	if err := r.CreateTable("item"); err != nil {
		fatal("matrix: schema: %v", err)
	}
	if err := r.Load("item", shardMatrixRows, func(row int64) string {
		return fmt.Sprintf("load-%d", row)
	}); err != nil {
		fatal("matrix: load: %v", err)
	}

	var commits, crossTxns, aborts int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(c)))
			var myCommits, myCross, myAborts int64
			for t := 0; t < txns; t++ {
				// Retry the intent until it commits, counting the aborts —
				// the same closed-loop contract as repl.Drive.
				for attempt := 0; ; attempt++ {
					if attempt > 100 {
						fatal("matrix: client %d txn %d aborted %d times", c, t, attempt)
					}
					isCross, err := driveShardTxn(sys, r.Map(), rng, n, cross, c, t)
					if err == nil {
						myCommits++
						if isCross {
							myCross++
						}
						break
					}
					if errors.Is(err, repl.ErrAborted) {
						myAborts++
						continue
					}
					fatal("matrix: client %d: %v", c, err)
				}
			}
			mu.Lock()
			commits += myCommits
			crossTxns += myCross
			aborts += myAborts
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r.Sync()
	if err := repl.CheckConvergence(r, []string{"item"}); err != nil {
		fatal("matrix: convergence: %v", err)
	}
	cell.Commits = commits
	cell.CrossTxns = crossTxns
	cell.Aborts = aborts
	cell.ElapsedSec = elapsed.Seconds()
	cell.TPS = float64(commits) / elapsed.Seconds()
	cell.Converged = true
	return cell
}

// driveShardTxn runs one synthetic update transaction: a write to one
// uniformly random row and, with probability cross, a second write to
// a row owned by a DIFFERENT group — forcing the 2PC path at exactly
// the configured rate. Returns whether the transaction spanned groups.
func driveShardTxn(sys repl.System, m router.Map, rng *rand.Rand, n int, cross float64, c, t int) (bool, error) {
	txn, err := sys.BeginUpdate()
	if err != nil {
		return false, err
	}
	row := rng.Int63n(shardMatrixRows)
	if err := txn.Write("item", row, fmt.Sprintf("c%d-t%d", c, t)); err != nil {
		txn.Abort()
		return false, err
	}
	isCross := false
	if n > 1 && rng.Float64() < cross {
		home := m.Locate("item", row)
		for {
			row2 := rng.Int63n(shardMatrixRows)
			if m.Locate("item", row2) == home {
				continue
			}
			if err := txn.Write("item", row2, fmt.Sprintf("c%d-t%d-x", c, t)); err != nil {
				txn.Abort()
				return false, err
			}
			isCross = true
			break
		}
	}
	return isCross, txn.Commit()
}
