// Command replicadb runs the live replicated-database middleware (the
// functional prototypes of §5, not the performance simulation) in
// three modes:
//
//   - the default in-process mode builds a multi-master or
//     single-master cluster over the in-memory snapshot-isolation
//     engine, drives concurrent closed-loop clients through the load
//     balancer and verifies convergence;
//   - "serve" runs ONE replica as a TCP server process, so an
//     N-replica cluster is N processes connected by the wire protocol
//     (replica 0 hosts the certifier for mm / is the master for sm);
//   - "bench" drives a TPC-W / RUBiS mix against a running networked
//     cluster through the pooled client and verifies convergence over
//     the wire;
//   - "status" polls a running cluster and renders the operator
//     dashboard: leadership, per-replica apply and replication lag,
//     commit-path stage means, and the live MVA model residual.
//
// Usage:
//
//	replicadb -design mm -replicas 4 -mix tpcw-shopping -txns 200
//	replicadb -design sm -replicas 3 -mix rubis-bidding -clients 16
//	replicadb -design mm -replicas 2 -paxos       # replicated certifier
//
//	replicadb serve -design mm -id 0 -listen 127.0.0.1:7000 \
//	    -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	replicadb serve -design mm -id 0 -listen 127.0.0.1:7000 \
//	    -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	    -paxos -wal-dir /var/lib/replicadb/0   # leader failover + durability
//	replicadb bench -design mm \
//	    -servers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//	    -mix tpcw-shopping -clients 8 -txns 100
//
// Flag combinations are validated up front; invalid ones exit 2 with
// a usage message.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/elastic"
	"repro/internal/obs/events"
	"repro/internal/repl"
	"repro/internal/repl/mm"
	"repro/internal/repl/pipeline"
	"repro/internal/repl/sm"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	args := os.Args[1:]
	mode := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		mode = args[0]
		args = args[1:]
	}
	switch mode {
	case "run":
		runMain(args)
	case "serve":
		serveMain(args)
	case "bench":
		benchMain(args)
	case "status":
		statusMain(args)
	default:
		fmt.Fprintf(os.Stderr, "replicadb: unknown mode %q (run|serve|bench|status)\n", mode)
		os.Exit(2)
	}
}

// usageExit prints a flag error plus the flag set's usage and exits 2,
// the contract for invalid invocations.
func usageExit(fs *flag.FlagSet, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replicadb %s: %s\n", fs.Name(), fmt.Sprintf(format, args...))
	fs.Usage()
	os.Exit(2)
}

// fatal reports a runtime failure (exit 1, not a usage error).
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replicadb: %s\n", fmt.Sprintf(format, args...))
	os.Exit(1)
}

// mustMix resolves a mix id or exits 2 listing the valid ones.
func mustMix(fs *flag.FlagSet, id string) workload.Mix {
	mix, ok := workload.ByID(id)
	if !ok {
		ids := make([]string, 0, len(workload.All()))
		for _, m := range workload.All() {
			ids = append(ids, m.ID())
		}
		usageExit(fs, "unknown mix %q (valid: %s)", id, strings.Join(ids, ", "))
	}
	return mix
}

// printDriveResult renders commit counts and the per-class latency
// percentiles shared by the in-process and networked drivers.
func printDriveResult(res repl.DriveResult, elapsed time.Duration) {
	fmt.Printf("\ncommitted %d transactions in %.2fs (%.0f tps wall-clock)\n",
		res.Commits, elapsed.Seconds(), float64(res.Commits)/elapsed.Seconds())
	fmt.Printf("  read-only: %d, updates: %d, certification aborts (retried): %d, errors: %d\n",
		res.ReadCommits, res.UpdateCommits, res.Aborts, res.Errors)
	if res.Unknown > 0 {
		fmt.Printf("  unknown-outcome commits (leadership moved mid-commit, not retried): %d\n",
			res.Unknown)
	}
	if res.Errors > 0 && res.FirstError != "" {
		fmt.Printf("  first error: %s\n", res.FirstError)
	}
	printLatency("read-only", res.ReadLatency)
	printLatency("update   ", res.UpdateLatency)
}

func printLatency(class string, l *stats.Latency) {
	if l == nil || l.Count() == 0 {
		return
	}
	fmt.Printf("  %s latency: %s\n", class, l.Summary())
}

// runMain is the original in-process mode.
func runMain(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		design   = fs.String("design", "mm", "replication design: mm or sm")
		replicas = fs.Int("replicas", 4, "number of database replicas")
		mixID    = fs.String("mix", "tpcw-shopping", "workload mix id")
		clients  = fs.Int("clients", 8, "concurrent clients")
		txns     = fs.Int("txns", 100, "committed transactions per client")
		factor   = fs.Int("factor", 100, "table scale-down factor (1 = full benchmark size)")
		paxos    = fs.Bool("paxos", false, "replicate the MM certifier over a 3-node Paxos group")
		batch    = fs.Bool("groupcommit", false, "batch MM commit certification (one Paxos round per batch)")
		seed     = fs.Uint64("seed", 1, "workload seed")
	)
	fs.Parse(args)

	// Validate the flag combination before building anything.
	if *design != "mm" && *design != "sm" {
		usageExit(fs, "unknown design %q (mm|sm)", *design)
	}
	if *design == "sm" && *paxos {
		usageExit(fs, "-paxos requires -design mm (the single-master design has no certifier)")
	}
	if *design == "sm" && *batch {
		usageExit(fs, "-groupcommit requires -design mm")
	}
	if *replicas < 1 {
		usageExit(fs, "-replicas must be >= 1 (got %d)", *replicas)
	}
	if *clients < 1 || *txns < 1 {
		usageExit(fs, "-clients and -txns must be >= 1")
	}
	if *factor < 1 {
		usageExit(fs, "-factor must be >= 1 (got %d)", *factor)
	}
	mix := mustMix(fs, *mixID)
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		fatal("%v", err)
	}

	var sys repl.System
	var loader repl.Loader
	switch *design {
	case "mm":
		c, err := mm.New(mm.Options{
			Replicas:            *replicas,
			ReplicatedCertifier: *paxos,
			EagerCertification:  true,
			GroupCommit:         *batch,
		})
		if err != nil {
			fatal("%v", err)
		}
		sys, loader = c, c
	case "sm":
		c, err := sm.New(sm.Options{Replicas: *replicas})
		if err != nil {
			fatal("%v", err)
		}
		sys, loader = c, c
	}

	fmt.Printf("loading %s schema (scale 1/%d) on %d replicas...\n", cat.Benchmark, *factor, *replicas)
	if err := repl.LoadCatalog(loader, cat, *factor); err != nil {
		fatal("load: %v", err)
	}

	fmt.Printf("driving %d clients x %d transactions (%s mix: %.0f%% reads / %.0f%% updates)...\n",
		*clients, *txns, mix.Name, mix.Pr*100, mix.Pw*100)
	start := time.Now()
	res := repl.Drive(sys, cat, mix, *clients, *txns, *factor, *seed)
	printDriveResult(res, time.Since(start))
	if res.Errors > 0 {
		fatal("unexpected errors during the run")
	}

	fmt.Print("checking replica convergence... ")
	if err := repl.CheckConvergence(sys, tableNames(cat)); err != nil {
		fmt.Println("FAILED")
		fatal("%v", err)
	}
	fmt.Println("ok: all replicas identical")

	if c, ok := sys.(*mm.Cluster); ok {
		if cert := c.Certifier(); cert != nil {
			commits, aborts := cert.Stats()
			fmt.Printf("certifier: %d commits, %d aborts, version %d\n",
				commits, aborts, cert.Version())
			if slots := cert.ReplicationSlots(); slots > 0 {
				fmt.Printf("certifier log: %d Paxos slots for %d commits\n", slots, commits)
			}
		}
	}
}

// serveMain runs one replica server process: a boot-time member of a
// configured cluster (-id/-peers), an elastic joiner (-join), or the
// primary with the prediction-driven autoscaler (-autoscale).
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		design  = fs.String("design", "mm", "replication design: mm or sm")
		id      = fs.Int("id", 0, "this replica's id (0 hosts the certifier / is the master)")
		listen  = fs.String("listen", "", "TCP listen address, e.g. 127.0.0.1:7000 (required)")
		peers   = fs.String("peers", "", "comma-separated replica addresses indexed by id (peers[0] is the primary; required unless -join)")
		join    = fs.String("join", "", "elastic join: primary address to join at startup (mm; the primary assigns the id and transfers a snapshot)")
		metrics = fs.String("metrics", "", "optional HTTP /metrics listen address")
		batch   = fs.Bool("groupcommit", false, "batch commit certification on the certifier host (mm, id 0)")
		groupW  = fs.Duration("groupwindow", 0, "cap the adaptive group-commit accumulation window (0: adaptive default; negative: flush backlog batches immediately; requires -groupcommit)")
		nocomp  = fs.Bool("nocompress", false, "disable DEFLATE compression of propagated record bodies on v5 connections")
		eager   = fs.Bool("eager", false, "eager certification on writes (mm; remote probe per write on non-primary nodes)")
		walDir  = fs.String("wal-dir", "", "durable commits: write-ahead log directory (replayed on start; a restarted replica resumes via FetchSince)")
		fsync   = fs.Bool("fsync", false, "fsync WAL commits (group commit) before acknowledging; requires -wal-dir")
		workers = fs.Int("apply-workers", runtime.GOMAXPROCS(0), "parallel writeset appliers: non-conflicting propagated writesets install concurrently (1 = serial apply)")
		paxos   = fs.Bool("paxos", false, "replicate the certifier over the -peers group with leader election and automatic failover (mm; composes with -wal-dir/-fsync)")
		electTO = fs.Duration("elect-timeout", time.Second, "paxos: how long a backup goes without leader progress before campaigning")

		shard  = fs.Int("shard", 0, "hash-partitioned deployment: this replica group's shard id (every replica of a group serves the same -shard)")
		shards = fs.Int("shards", 1, "hash-partitioned deployment: total shard groups in the map (1: unsharded; clients route by the map stamped on Join/Members)")

		notrace = fs.Bool("notrace", false, "disable commit-path stage tracing (per-stage histograms, /debug/slowtxns)")
		slowMs  = fs.Int("slow-ms", 0, "slow-transaction threshold in milliseconds for /debug/slowtxns (0: default 50ms)")

		autoscale  = fs.Bool("autoscale", false, "run the MVA autoscaler on this primary (mm, id 0): spawn/retire loopback replicas to track the live load")
		modelcheck = fs.Bool("modelcheck", false, "continuously evaluate the MVA model against this cluster and export replicadb_model_* residual gauges (mm, id 0)")
		recal      = fs.Bool("recalibrate", false, "fold live-measured commit-path stage demands into the model's calibrated profile (-autoscale and -modelcheck)")
		minRep     = fs.Int("min", 1, "autoscaler: minimum replica count")
		maxRep     = fs.Int("max", 4, "autoscaler: maximum replica count")
		profMix    = fs.String("profile-mix", "tpcw-shopping", "autoscaler: standalone profile supplying the model's service demands")
		think      = fs.Float64("think", 0, "autoscaler: live client think time in seconds (0: the profile's)")
	)
	fs.Parse(args)

	if *design != "mm" && *design != "sm" {
		usageExit(fs, "unknown design %q (mm|sm)", *design)
	}
	if *listen == "" {
		usageExit(fs, "serve requires -listen")
	}
	if *join != "" && *peers != "" {
		usageExit(fs, "-join and -peers are mutually exclusive")
	}
	if *join != "" && *design != "mm" {
		usageExit(fs, "-join requires -design mm (single-master clusters are fixed at boot)")
	}
	if *join != "" && *autoscale {
		usageExit(fs, "-autoscale runs on the primary, not on a joiner")
	}
	var peerList []string
	if *join == "" {
		if *peers == "" {
			usageExit(fs, "serve requires -peers (all replica addresses, indexed by id) or -join")
		}
		peerList = splitAddrs(*peers)
		if *id < 0 || *id >= len(peerList) {
			usageExit(fs, "-id %d out of range for %d peers", *id, len(peerList))
		}
	}
	if *design == "sm" && (*batch || *eager) {
		usageExit(fs, "-groupcommit and -eager require -design mm")
	}
	if *paxos {
		// -paxos deliberately composes with -wal-dir/-fsync: the quorum
		// is the durability authority and the WAL doubles as the
		// acceptor's persistent store, so a restarted node rejoins with
		// its promises intact.
		if *design != "mm" {
			usageExit(fs, "-paxos requires -design mm (the single-master design has no certifier)")
		}
		if *join != "" {
			usageExit(fs, "-paxos and -join are mutually exclusive (the replicated-certifier group is fixed at boot)")
		}
		if *autoscale {
			usageExit(fs, "-autoscale is not supported with -paxos (the replicated-certifier group is fixed at boot)")
		}
		if *electTO <= 0 {
			usageExit(fs, "-elect-timeout must be positive (got %s)", *electTO)
		}
	}
	if *batch && !*paxos && (*id != 0 || *join != "") {
		usageExit(fs, "-groupcommit only applies to the certifier host (id 0, or any node with -paxos)")
	}
	if *groupW != 0 && !*batch {
		usageExit(fs, "-groupwindow requires -groupcommit")
	}
	if *autoscale && (*design != "mm" || *id != 0) {
		usageExit(fs, "-autoscale requires -design mm and -id 0 (the membership authority)")
	}
	if *autoscale && (*minRep < 1 || *maxRep < *minRep) {
		usageExit(fs, "-min/-max must satisfy 1 <= min <= max (got %d/%d)", *minRep, *maxRep)
	}
	if *autoscale && *maxRep < len(peerList) {
		usageExit(fs, "-max %d below the %d statically configured replicas (they are never scaled away)", *maxRep, len(peerList))
	}
	if *fsync && *walDir == "" {
		usageExit(fs, "-fsync requires -wal-dir")
	}
	if *slowMs < 0 {
		usageExit(fs, "-slow-ms must be >= 0 (got %d)", *slowMs)
	}
	if *modelcheck && (*design != "mm" || *id != 0) {
		usageExit(fs, "-modelcheck requires -design mm and -id 0 (the model predicts the multi-master design and needs the membership authority)")
	}
	if *workers < 1 {
		usageExit(fs, "-apply-workers must be >= 1 (got %d; 1 disables parallel apply)", *workers)
	}
	if *shards < 1 {
		usageExit(fs, "-shards must be >= 1 (got %d)", *shards)
	}
	if *shard < 0 || *shard >= *shards {
		usageExit(fs, "-shard %d out of range for %d shard groups", *shard, *shards)
	}
	if *shards > 1 && *design != "mm" {
		usageExit(fs, "-shards requires -design mm (cross-shard commit runs 2PC over certification)")
	}
	baseMix := mustMix(fs, *profMix)

	opts := server.Options{
		Design:       *design,
		ID:           *id,
		Listen:       *listen,
		MetricsAddr:  *metrics,
		GroupCommit:  *batch,
		GroupWindow:  *groupW,
		NoCompress:   *nocomp,
		EagerCert:    *eager,
		Replicas:     len(peerList),
		Members:      peerList,
		WALDir:       *walDir,
		Fsync:        *fsync,
		ApplyWorkers: *workers,
		DisableTrace: *notrace,
		SlowTxn:      time.Duration(*slowMs) * time.Millisecond,
		ShardID:      *shard,
		ShardCount:   *shards,
	}
	if *paxos {
		opts.Paxos = true
		opts.PaxosPeers = peerList
		opts.ElectTimeout = *electTO
	}
	if *join != "" {
		opts.Join = true
		opts.Primary = *join
	} else if *id > 0 && !*paxos {
		opts.Primary = peerList[0]
	}
	srv, err := server.New(opts)
	if err != nil {
		fatal("%v", err)
	}
	srv.Start()
	role := "replica"
	switch {
	case *paxos:
		role = "replicated-certifier replica"
	case *join != "":
		role = "elastic replica"
	case *id == 0 && *design == "mm":
		role = "replica+certifier"
	case *id == 0:
		role = "master"
	}
	fmt.Printf("replicadb: serving %s %s on %s\n", *design, role, srv.Addr())
	if *shards > 1 {
		fmt.Printf("replicadb: shard group %d of %d (clients route by the published shard map)\n", *shard, *shards)
	}
	if *paxos {
		fmt.Printf("replicadb: certification replicated over %d nodes (election timeout %s)\n",
			len(peerList), *electTO)
		// Announce the election outcome once it settles; kill the leader
		// and the survivors print the handover the same way.
		go func() {
			wasLeading, hadLeader := false, -2
			for {
				leading, leader, epoch, ok := srv.Leader()
				if !ok {
					return
				}
				switch {
				case leading && !wasLeading:
					fmt.Printf("replicadb: this node leads certification (epoch %d.%d)\n", epoch.Round, epoch.Proposer)
				case !leading && leader >= 0 && (leader != hadLeader || wasLeading):
					fmt.Printf("replicadb: certifier leader is node %d (epoch %d.%d)\n", leader, epoch.Round, epoch.Proposer)
				}
				wasLeading, hadLeader = leading, leader
				time.Sleep(200 * time.Millisecond)
			}
		}()
	}
	if v, ok := srv.Resumed(); ok {
		fmt.Printf("replicadb: resumed from WAL at version %d (catching up via FetchSince)\n", v)
	}
	if addr := srv.MetricsAddr(); addr != "" {
		fmt.Printf("replicadb: metrics on http://%s/metrics\n", addr)
	}

	var ctlStop chan struct{}
	var scaler *elastic.LocalScaler
	var src *elastic.WireSource
	if *autoscale {
		// The baseline is the statically configured cluster (never
		// scaled away); only replicas spawned here are elastic.
		baseline := len(peerList)
		if baseline < 1 {
			baseline = 1
		}
		scaler = elastic.NewLocalScaler(baseline, func() (elastic.Replica, error) {
			rep, err := server.New(server.Options{
				Design:  "mm",
				Listen:  "127.0.0.1:0",
				Join:    true,
				Primary: srv.Addr(),
			})
			if err != nil {
				return nil, err
			}
			rep.Start()
			fmt.Printf("replicadb: autoscaler added replica on %s\n", rep.Addr())
			return rep, nil
		})
		src = elastic.NewWireSource(srv.Addr(), "mm", 2*time.Second)
		ctl, err := elastic.NewController(elastic.Config{
			Min: *minRep, Max: *maxRep,
			Base:        baseMix,
			Think:       *think,
			Recalibrate: *recal,
		}, scaler, src)
		if err != nil {
			fatal("autoscaler: %v", err)
		}
		// Every attempted scaling step lands in the node's event journal
		// with the MVA inputs that motivated it.
		ctl.OnDecision(func(d elastic.Decision) {
			msg := fmt.Sprintf("scale %s: %d -> %d replicas (util %.2f, ~%.0f clients)",
				d.Direction, d.Current, d.Target, d.Util, d.Clients)
			fields := map[string]string{
				"direction": d.Direction,
				"target":    strconv.Itoa(d.Target),
				"current":   strconv.Itoa(d.Current),
				"clients":   fmt.Sprintf("%.1f", d.Clients),
				"util":      fmt.Sprintf("%.3f", d.Util),
			}
			if d.Err != nil {
				fields["error"] = d.Err.Error()
				msg += ": " + d.Err.Error()
			}
			srv.Events().Emit(events.ScaleDecision, msg, fields)
		})
		ctlStop = make(chan struct{})
		go ctl.Run(ctlStop)
		fmt.Printf("replicadb: autoscaling %d..%d replicas against the %s profile\n", *minRep, *maxRep, baseMix.ID())
	}

	var monStop chan struct{}
	var monSrc *elastic.WireSource
	if *modelcheck {
		monSrc = elastic.NewWireSource(srv.Addr(), "mm", 2*time.Second)
		mon := elastic.NewMonitor(srv.Registry(), baseMix, *think, monSrc)
		mon.SetRecalibrate(*recal)
		monStop = make(chan struct{})
		go mon.Run(time.Second, monStop)
		fmt.Printf("replicadb: exporting MVA model residuals against the %s profile\n", baseMix.ID())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("replicadb: shutting down")
	if ctlStop != nil {
		close(ctlStop)
		scaler.Close()
		src.Close()
	}
	if monStop != nil {
		close(monStop)
		monSrc.Close()
	}
	if err := srv.Close(); err != nil {
		fatal("shutdown: %v", err)
	}
}

// benchResult is the machine-readable record one bench run emits with
// -json; BENCH_PR3.json aggregates these across scenarios.
type benchResult struct {
	Design        string  `json:"design"`
	Mix           string  `json:"mix"`
	Clients       int     `json:"clients"`
	TxnsPerClient int     `json:"txns_per_client"`
	Factor        int     `json:"factor"`
	Seed          uint64  `json:"seed"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	TPS           float64 `json:"tps"`
	Commits       int64   `json:"commits"`
	ReadCommits   int64   `json:"read_commits"`
	UpdateCommits int64   `json:"update_commits"`
	Aborts        int64   `json:"aborts"`
	Errors        int64   `json:"errors"`
	Unknown       int64   `json:"unknown_outcomes"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	UpdateP50Ms   float64 `json:"update_p50_ms"`
	UpdateP99Ms   float64 `json:"update_p99_ms"`
	ReplicasStart int     `json:"replicas_start"`
	ReplicasEnd   int     `json:"replicas_end"`
	Converged     bool    `json:"converged"`
	Pipelined     bool    `json:"pipelined"`
	// Ramp-up exclusion: TPS above includes connection warm-up and
	// joiner catch-up inside its window. RampSec/RampCommits report the
	// excluded warm-up slice, and SteadyTPS is the cluster commit rate
	// over the post-ramp window only (absent when the run finished
	// inside the ramp, or the cluster's counters could not be sampled).
	RampSec     float64 `json:"ramp_sec,omitempty"`
	RampCommits int64   `json:"ramp_commits,omitempty"`
	SteadyTPS   float64 `json:"steady_tps,omitempty"`
	// StageMeanUs is the cluster-wide mean per-writeset latency of each
	// commit-path stage over the run, in microseconds (absent when the
	// target cluster runs with tracing disabled).
	StageMeanUs map[string]float64 `json:"stage_mean_us,omitempty"`
	// Model holds the MVA residual evaluated over the run's window.
	Model *elastic.ModelError `json:"model,omitempty"`
}

// benchWindow samples the cluster's cumulative counters before and
// after the drive and folds the window into the stage breakdown and
// the model residual. Either can come back empty: a cohort change
// (replica joined mid-run) discards the window, and an untraced
// cluster reports no stage counters.
type benchWindow struct {
	src  *elastic.WireSource
	prof *elastic.Profiler
	ok   bool
}

func openBenchWindow(primary string, design string, mix workload.Mix) *benchWindow {
	// The bench driver is a zero-think closed loop (clients fire the
	// next transaction immediately), unlike the paper's 1 s-think TPC-W
	// clients the mix describes — so the model must be evaluated at
	// think 0 or Little's law inflates the population ~4000x.
	mix.Think = 0
	w := &benchWindow{
		src:  elastic.NewWireSource(primary, design, 2*time.Second),
		prof: elastic.NewProfiler(mix, 0),
	}
	if s, err := w.src.Sample(); err == nil {
		w.prof.Observe(s)
		w.ok = true
	}
	return w
}

func (w *benchWindow) close(out *benchResult, design string) {
	defer w.src.Close()
	if !w.ok {
		return
	}
	s, err := w.src.Sample()
	if err != nil {
		return
	}
	load, ok := w.prof.Observe(s)
	if !ok {
		return
	}
	stages := make(map[string]float64, pipeline.NumStages)
	for i, mean := range load.StageMeans {
		if mean > 0 {
			stages[pipeline.StageNames[i]] = mean * 1e6
		}
	}
	if len(stages) > 0 {
		out.StageMeanUs = stages
	}
	// The residual only speaks for the multi-master model.
	if design == "mm" {
		if me, ok := elastic.EvalModel(w.prof, load, load.Members); ok {
			out.Model = &me
		}
	}
}

// clusterCommits samples the cluster-wide cumulative commit count for
// the ramp-up exclusion window.
func clusterCommits(src *elastic.WireSource) (int64, bool) {
	s, err := src.Sample()
	if err != nil {
		return 0, false
	}
	return s.ReadCommits + s.UpdateCommits, true
}

// rampPoint marks the cluster commit counter at the ramp boundary.
type rampPoint struct {
	commits int64
	at      time.Time
	ok      bool
}

// benchMain drives a networked cluster through the pooled client.
func benchMain(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		design   = fs.String("design", "mm", "replication design of the target cluster: mm or sm")
		servers  = fs.String("servers", "", "comma-separated replica server addresses indexed by id (required)")
		mixID    = fs.String("mix", "tpcw-shopping", "workload mix id")
		clients  = fs.Int("clients", 8, "concurrent clients")
		txns     = fs.Int("txns", 100, "committed transactions per client")
		factor   = fs.Int("factor", 100, "table scale-down factor")
		seed     = fs.Uint64("seed", 1, "workload seed")
		load     = fs.Bool("load", true, "create and load the schema before driving")
		converge = fs.Bool("converge", true, "verify replica convergence after the run")
		watch    = fs.Bool("watch", false, "watch cluster membership and spread load onto replicas that join mid-run (mm)")
		pipe     = fs.Bool("pipeline", false, "pipeline update operations: stream writes without per-op acks, drain at commit")
		ramp     = fs.Duration("ramp", 500*time.Millisecond, "with -json: exclude this warm-up window from steady_tps (0 disables)")
		jsonOut  = fs.String("json", "", "write a machine-readable result to this file (\"-\" for stdout)")
		matrix   = fs.Bool("matrix", false, "run the in-process scaling matrix (apply-workers x pipelining x compression) instead of targeting -servers")
		matOut   = fs.String("matrix-out", "", "with -matrix: write the matrix report to this file (default BENCH_PR9.json, or BENCH_PR10.json with -shards; \"-\" for stdout)")
		shards   = fs.String("shards", "", "with -matrix: run the shard-count dimension instead — comma-separated group counts to sweep (e.g. 1,2,4), each as a disjoint and a -cross mixed cell")
		cross    = fs.Float64("cross", 0.10, "with -matrix -shards: fraction of transactions writing a second row on a different shard group (2PC path)")
	)
	fs.Parse(args)

	if *design != "mm" && *design != "sm" {
		usageExit(fs, "unknown design %q (mm|sm)", *design)
	}
	if *shards != "" && !*matrix {
		usageExit(fs, "-shards requires -matrix (the shard dimension boots its own loopback groups)")
	}
	if *matrix {
		if *design != "mm" {
			usageExit(fs, "-matrix boots multi-master clusters (-design mm)")
		}
		if *servers != "" {
			usageExit(fs, "-matrix boots its own loopback clusters; drop -servers")
		}
		if *clients < 1 || *txns < 1 || *factor < 1 {
			usageExit(fs, "-clients, -txns and -factor must be >= 1")
		}
		if *shards != "" {
			if *cross < 0 || *cross > 1 {
				usageExit(fs, "-cross must be in [0,1] (got %g)", *cross)
			}
			var counts []int
			for _, s := range splitAddrs(*shards) {
				n, err := strconv.Atoi(s)
				if err != nil || n < 1 {
					usageExit(fs, "-shards: bad group count %q", s)
				}
				counts = append(counts, n)
			}
			out := *matOut
			if out == "" {
				out = "BENCH_PR10.json"
			}
			shardMatrixMain(counts, *cross, *clients, *txns, *seed, out)
			return
		}
		out := *matOut
		if out == "" {
			out = "BENCH_PR9.json"
		}
		matrixMain(fs, *mixID, *clients, *txns, *factor, *seed, out)
		return
	}
	if *servers == "" {
		usageExit(fs, "bench requires -servers")
	}
	if *clients < 1 || *txns < 1 {
		usageExit(fs, "-clients and -txns must be >= 1")
	}
	if *factor < 1 {
		usageExit(fs, "-factor must be >= 1 (got %d)", *factor)
	}
	if *watch && *design != "mm" {
		usageExit(fs, "-watch requires -design mm")
	}
	mix := mustMix(fs, *mixID)
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		fatal("%v", err)
	}

	cl, err := client.New(client.Options{
		Servers:  splitAddrs(*servers),
		Design:   *design,
		Watch:    *watch,
		Pipeline: *pipe,
	})
	if err != nil {
		fatal("%v", err)
	}
	defer cl.Close()

	if *load {
		fmt.Printf("loading %s schema (scale 1/%d) over %d servers...\n", cat.Benchmark, *factor, cl.Replicas())
		if err := repl.LoadCatalog(cl, cat, *factor); err != nil {
			fatal("load: %v", err)
		}
	}

	fmt.Printf("driving %d clients x %d transactions over TCP (%s mix: %.0f%% reads / %.0f%% updates)...\n",
		*clients, *txns, mix.Name, mix.Pr*100, mix.Pw*100)
	var bw *benchWindow
	var rampSrc *elastic.WireSource
	var startCommits int64
	var startOK bool
	rampCh := make(chan rampPoint, 1)
	if *jsonOut != "" {
		bw = openBenchWindow(splitAddrs(*servers)[0], *design, mix)
		if *ramp > 0 {
			// Sample the cluster's cumulative commit counter at the start
			// and again at the ramp boundary, so the steady-state rate can
			// be computed without the connection warm-up and catch-up
			// transients the wall-clock TPS folds in.
			rampSrc = elastic.NewWireSource(splitAddrs(*servers)[0], *design, 2*time.Second)
			defer rampSrc.Close()
			startCommits, startOK = clusterCommits(rampSrc)
			wait := *ramp
			go func() {
				time.Sleep(wait)
				c, ok := clusterCommits(rampSrc)
				rampCh <- rampPoint{commits: c, at: time.Now(), ok: ok}
			}()
		}
	}
	replicasStart := cl.Replicas()
	start := time.Now()
	res := repl.Drive(cl, cat, mix, *clients, *txns, *factor, *seed)
	elapsed := time.Since(start)
	// The end-of-drive counter sample must land before the convergence
	// check below, whose read transactions would inflate it.
	var endCommits int64
	var endOK bool
	endAt := time.Now()
	if rampSrc != nil {
		endCommits, endOK = clusterCommits(rampSrc)
	}
	printDriveResult(res, elapsed)
	if res.Errors > 0 {
		fatal("unexpected errors during the run")
	}

	converged := false
	if *converge {
		fmt.Print("checking replica convergence... ")
		if err := repl.CheckConvergence(cl, tableNames(cat)); err != nil {
			fmt.Println("FAILED")
			fatal("%v", err)
		}
		fmt.Printf("ok: all %d replicas identical\n", cl.Replicas())
		converged = true
	}

	if *jsonOut != "" {
		out := benchResult{
			Design:        *design,
			Mix:           mix.ID(),
			Clients:       *clients,
			TxnsPerClient: *txns,
			Factor:        *factor,
			Seed:          *seed,
			ElapsedSec:    elapsed.Seconds(),
			TPS:           float64(res.Commits) / elapsed.Seconds(),
			Commits:       res.Commits,
			ReadCommits:   res.ReadCommits,
			UpdateCommits: res.UpdateCommits,
			Aborts:        res.Aborts,
			Errors:        res.Errors,
			Unknown:       res.Unknown,
			ReadP50Ms:     ms(res.ReadLatency.Quantile(0.50)),
			ReadP99Ms:     ms(res.ReadLatency.Quantile(0.99)),
			UpdateP50Ms:   ms(res.UpdateLatency.Quantile(0.50)),
			UpdateP99Ms:   ms(res.UpdateLatency.Quantile(0.99)),
			ReplicasStart: replicasStart,
			ReplicasEnd:   cl.Replicas(),
			Converged:     converged,
			Pipelined:     *pipe,
		}
		var rp rampPoint
		select {
		case rp = <-rampCh:
		default: // the run finished inside the ramp window
		}
		if rp.ok && startOK && endOK && endAt.After(rp.at) && endCommits >= rp.commits {
			out.RampSec = rp.at.Sub(start).Seconds()
			out.RampCommits = rp.commits - startCommits
			out.SteadyTPS = float64(endCommits-rp.commits) / endAt.Sub(rp.at).Seconds()
		}
		bw.close(&out, *design)
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal("json: %v", err)
		}
		buf = append(buf, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal("json: %v", err)
		}
	}
}

// statusReplica is one replica's row in a status report. A replica
// that failed to answer the poll carries only Addr and Error.
type statusReplica struct {
	Addr       string  `json:"addr"`
	ID         int64   `json:"id"`
	Shard      int64   `json:"shard"`
	Leading    bool    `json:"leading"`
	Epoch      int64   `json:"epoch"`
	Applied    int64   `json:"applied"`
	Behind     int64   `json:"versions_behind"`
	QueueDepth int64   `json:"queue_depth"`
	ActiveTxns int64   `json:"active_txns"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	LagCount   int64   `json:"repl_lag_count"`
	LagMeanMs  float64 `json:"repl_lag_mean_ms"`
	LagMaxMs   float64 `json:"repl_lag_max_ms"`
	Error      string  `json:"error,omitempty"`
}

// statusReport is the machine-readable cluster snapshot `replicadb
// status` renders; -json emits one document per poll.
type statusReport struct {
	When        string              `json:"when"`
	Design      string              `json:"design"`
	Leader      int64               `json:"leader"` // replica id, -1 unknown
	Epoch       int64               `json:"epoch"`
	MaxApplied  int64               `json:"max_applied"`
	Up          int                 `json:"replicas_up"`
	Polled      int                 `json:"replicas_polled"`
	Replicas    []statusReplica     `json:"replicas"`
	StageMeanUs map[string]float64  `json:"stage_mean_us,omitempty"`
	Model       *elastic.ModelError `json:"model,omitempty"`
}

// statusPoller polls every known replica's Stats counters and keeps a
// profiler across polls so watch mode reports the model residual of
// each inter-poll window.
type statusPoller struct {
	design string
	links  map[string]*client.Link
	addrs  []string // stable poll order; grows as members are discovered
	prof   *elastic.Profiler
}

func newStatusPoller(servers []string, design string, mix workload.Mix) *statusPoller {
	p := &statusPoller{
		design: design,
		links:  make(map[string]*client.Link),
		// The status profiler evaluates the model at think 0: the
		// populations it infers come from closed-loop bench clients.
		prof: elastic.NewProfiler(mix, 0),
	}
	for _, a := range servers {
		p.addAddr(a)
	}
	return p
}

func (p *statusPoller) addAddr(addr string) {
	if addr == "" {
		return
	}
	if _, ok := p.links[addr]; ok {
		return
	}
	p.links[addr] = client.NewLink(addr, p.design, -1, 2*time.Second)
	p.addrs = append(p.addrs, addr)
}

func (p *statusPoller) close() {
	for _, l := range p.links {
		l.Close()
	}
}

// poll takes one cluster snapshot. Membership is re-discovered from
// the first replica that answers Members, so replicas that joined
// after the -servers list was written still show up.
func (p *statusPoller) poll() statusReport {
	for _, addr := range p.addrs {
		_, members, err := p.links[addr].Members()
		if err != nil {
			continue
		}
		for _, m := range members {
			p.addAddr(m.Addr)
		}
		break
	}

	rep := statusReport{
		When:   time.Now().Format(time.RFC3339),
		Design: p.design,
		Leader: -1,
	}
	sample := elastic.Sample{When: time.Now()}
	var polled []string
	for _, addr := range p.addrs {
		row := statusReplica{Addr: addr}
		st, err := p.links[addr].Stats()
		if err != nil {
			row.Error = err.Error()
			rep.Replicas = append(rep.Replicas, row)
			continue
		}
		row.ID = st.ReplicaID
		row.Shard = st.ShardID
		row.Leading = st.Leading
		row.Epoch = st.Epoch
		row.Applied = st.Applied
		row.QueueDepth = st.QueueDepth
		row.ActiveTxns = st.ActiveTxns
		row.Commits = st.ReadCommits + st.UpdateCommits
		row.Aborts = st.Aborts
		row.LagCount = st.LagCount
		if st.LagCount > 0 {
			row.LagMeanMs = float64(st.LagSumNs) / float64(st.LagCount) / 1e6
		}
		row.LagMaxMs = float64(st.LagMaxNs) / 1e6
		if st.Leading {
			rep.Leader = st.ReplicaID
		}
		if st.Epoch > rep.Epoch {
			rep.Epoch = st.Epoch
		}
		if st.Applied > rep.MaxApplied {
			rep.MaxApplied = st.Applied
		}
		rep.Up++
		rep.Replicas = append(rep.Replicas, row)

		polled = append(polled, addr)
		sample.ReadCommits += st.ReadCommits
		sample.UpdateCommits += st.UpdateCommits
		sample.Aborts += st.Aborts
		sample.ReadNs += st.ReadNs
		sample.UpdateNs += st.UpdateNs
		for i := range sample.StageCounts {
			sample.StageCounts[i] += st.StageCounts[i]
			sample.StageNs[i] += st.StageNs[i]
		}
		sample.Members++
	}
	rep.Polled = len(p.addrs)
	for i := range rep.Replicas {
		if rep.Replicas[i].Error == "" {
			rep.Replicas[i].Behind = rep.MaxApplied - rep.Replicas[i].Applied
		}
	}
	// Cumulative per-stage means across the cluster (lifetime, not
	// windowed — status is a snapshot tool).
	stages := make(map[string]float64, pipeline.NumStages)
	for i := range sample.StageCounts {
		if sample.StageCounts[i] > 0 {
			stages[pipeline.StageNames[i]] =
				float64(sample.StageNs[i]) / float64(sample.StageCounts[i]) / 1e3
		}
	}
	if len(stages) > 0 {
		rep.StageMeanUs = stages
	}
	// Model residual over the window since the previous poll (mm only;
	// the first poll just seeds the baseline).
	sort.Strings(polled)
	sample.Cohort = strings.Join(polled, ",")
	if load, ok := p.prof.Observe(sample); ok && p.design == "mm" {
		if me, ok := elastic.EvalModel(p.prof, load, load.Members); ok {
			rep.Model = &me
		}
	}
	return rep
}

// render prints one report as an operator-facing table.
func (r statusReport) render(w *os.File) {
	fmt.Fprintf(w, "replicadb status @ %s — %s, %d/%d replicas up\n",
		r.When, r.Design, r.Up, r.Polled)
	switch {
	case r.Leader >= 0:
		fmt.Fprintf(w, "leader: node %d (epoch %d), max applied version %d\n",
			r.Leader, r.Epoch, r.MaxApplied)
	default:
		fmt.Fprintf(w, "leader: unknown (epoch %d), max applied version %d\n",
			r.Epoch, r.MaxApplied)
	}
	fmt.Fprintf(w, "%-22s %4s %5s %-6s %9s %7s %6s %9s %7s %16s\n",
		"addr", "id", "shard", "role", "applied", "behind", "queue", "commits", "aborts", "repl-lag avg/max")
	for _, rep := range r.Replicas {
		if rep.Error != "" {
			fmt.Fprintf(w, "%-22s DOWN: %s\n", rep.Addr, rep.Error)
			continue
		}
		role := "repl"
		if rep.Leading {
			role = "lead"
		}
		lag := "-"
		if rep.LagCount > 0 {
			lag = fmt.Sprintf("%.2f/%.2fms", rep.LagMeanMs, rep.LagMaxMs)
		}
		fmt.Fprintf(w, "%-22s %4d %5d %-6s %9d %7d %6d %9d %7d %16s\n",
			rep.Addr, rep.ID, rep.Shard, role, rep.Applied, rep.Behind, rep.QueueDepth,
			rep.Commits, rep.Aborts, lag)
	}
	if len(r.StageMeanUs) > 0 {
		keys := make([]string, 0, len(r.StageMeanUs))
		for k := range r.StageMeanUs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s %.0fµs", k, r.StageMeanUs[k]))
		}
		fmt.Fprintf(w, "stage means: %s\n", strings.Join(parts, " | "))
	}
	if r.Model != nil {
		fmt.Fprintf(w, "model: predicted %.1f tps vs observed %.1f tps (residual %+.1f%%)\n",
			r.Model.PredictedTPS, r.Model.ObservedTPS, r.Model.TPSError*100)
	}
}

// statusMain polls a live cluster's Stats counters and renders the
// operator dashboard: leadership, per-replica apply and replication
// lag, commit-path stage means, and the live MVA residual.
func statusMain(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var (
		design   = fs.String("design", "mm", "replication design of the target cluster: mm or sm")
		servers  = fs.String("servers", "", "comma-separated replica server addresses (required; membership is re-discovered from live members)")
		profMix  = fs.String("profile-mix", "tpcw-shopping", "standalone profile supplying the model's service demands for the residual")
		jsonOut  = fs.Bool("json", false, "emit one JSON document per poll instead of the table")
		watch    = fs.Bool("watch", false, "poll repeatedly until interrupted")
		interval = fs.Duration("interval", time.Second, "poll interval with -watch")
		window   = fs.Duration("window", 0, "one-shot: wait this long between two polls so the report carries a model residual (0 skips it)")
	)
	fs.Parse(args)

	if *design != "mm" && *design != "sm" {
		usageExit(fs, "unknown design %q (mm|sm)", *design)
	}
	if *servers == "" {
		usageExit(fs, "status requires -servers")
	}
	if *interval <= 0 {
		usageExit(fs, "-interval must be positive (got %s)", *interval)
	}
	mix := mustMix(fs, *profMix)

	p := newStatusPoller(splitAddrs(*servers), *design, mix)
	defer p.close()

	emit := func(r statusReport) {
		if *jsonOut {
			buf, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				fatal("json: %v", err)
			}
			os.Stdout.Write(append(buf, '\n'))
			return
		}
		r.render(os.Stdout)
	}

	if *watch {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		emit(p.poll())
		for {
			select {
			case <-sig:
				return
			case <-ticker.C:
				if !*jsonOut {
					fmt.Println()
				}
				emit(p.poll())
			}
		}
	}

	rep := p.poll()
	if *window > 0 {
		time.Sleep(*window)
		rep = p.poll()
	}
	emit(rep)
	if rep.Up == 0 {
		fatal("status: no replica answered")
	}
}

// ms renders a duration in (fractional) milliseconds for JSON.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// splitAddrs splits a comma-separated address list, trimming blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func tableNames(cat workload.Catalog) []string {
	names := make([]string, 0, len(cat.Tables))
	for name := range cat.Tables {
		names = append(names, name)
	}
	return names
}
