// Command replicadb runs the live replicated-database middleware (the
// functional prototypes of §5, not the performance simulation): it
// builds a multi-master or single-master cluster over the in-memory
// snapshot-isolation engine, loads the benchmark schema, drives
// concurrent closed-loop clients through the load balancer, and
// verifies that all replicas converged to identical contents.
//
// Usage:
//
//	replicadb -design mm -replicas 4 -mix tpcw-shopping -txns 200
//	replicadb -design sm -replicas 3 -mix rubis-bidding -clients 16
//	replicadb -design mm -replicas 2 -paxos       # replicated certifier
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/repl"
	"repro/internal/repl/mm"
	"repro/internal/repl/sm"
	"repro/internal/workload"
)

func main() {
	var (
		design   = flag.String("design", "mm", "replication design: mm or sm")
		replicas = flag.Int("replicas", 4, "number of database replicas")
		mixID    = flag.String("mix", "tpcw-shopping", "workload mix id")
		clients  = flag.Int("clients", 8, "concurrent clients")
		txns     = flag.Int("txns", 100, "committed transactions per client")
		factor   = flag.Int("factor", 100, "table scale-down factor (1 = full benchmark size)")
		paxos    = flag.Bool("paxos", false, "replicate the MM certifier over a 3-node Paxos group")
		batch    = flag.Bool("groupcommit", false, "batch MM commit certification (one Paxos round per batch)")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	mix, ok := workload.ByID(*mixID)
	if !ok {
		fmt.Fprintf(os.Stderr, "replicadb: unknown mix %q\n", *mixID)
		os.Exit(2)
	}
	cat, err := workload.CatalogFor(mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replicadb: %v\n", err)
		os.Exit(1)
	}

	var sys repl.System
	var loader repl.Loader
	var tables []string
	switch *design {
	case "mm":
		c, err := mm.New(mm.Options{
			Replicas:            *replicas,
			ReplicatedCertifier: *paxos,
			EagerCertification:  true,
			GroupCommit:         *batch,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "replicadb: %v\n", err)
			os.Exit(1)
		}
		sys, loader = c, c
	case "sm":
		c, err := sm.New(sm.Options{Replicas: *replicas})
		if err != nil {
			fmt.Fprintf(os.Stderr, "replicadb: %v\n", err)
			os.Exit(1)
		}
		sys, loader = c, c
	default:
		fmt.Fprintf(os.Stderr, "replicadb: unknown design %q (mm|sm)\n", *design)
		os.Exit(2)
	}

	fmt.Printf("loading %s schema (scale 1/%d) on %d replicas...\n", cat.Benchmark, *factor, *replicas)
	if err := repl.LoadCatalog(loader, cat, *factor); err != nil {
		fmt.Fprintf(os.Stderr, "replicadb: load: %v\n", err)
		os.Exit(1)
	}
	for name := range cat.Tables {
		tables = append(tables, name)
	}

	fmt.Printf("driving %d clients x %d transactions (%s mix: %.0f%% reads / %.0f%% updates)...\n",
		*clients, *txns, mix.Name, mix.Pr*100, mix.Pw*100)
	start := time.Now()
	res := repl.Drive(sys, cat, mix, *clients, *txns, *factor, *seed)
	elapsed := time.Since(start)

	fmt.Printf("\ncommitted %d transactions in %.2fs (%.0f tps wall-clock)\n",
		res.Commits, elapsed.Seconds(), float64(res.Commits)/elapsed.Seconds())
	fmt.Printf("  read-only: %d, updates: %d, certification aborts (retried): %d, errors: %d\n",
		res.ReadCommits, res.UpdateCommits, res.Aborts, res.Errors)
	if res.Errors > 0 {
		fmt.Fprintln(os.Stderr, "replicadb: unexpected errors during the run")
		os.Exit(1)
	}

	fmt.Print("checking replica convergence... ")
	if err := repl.CheckConvergence(sys, tables); err != nil {
		fmt.Println("FAILED")
		fmt.Fprintf(os.Stderr, "replicadb: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("ok: all replicas identical")

	if c, ok := sys.(*mm.Cluster); ok {
		commits, aborts := c.Certifier().Stats()
		fmt.Printf("certifier: %d commits, %d aborts, version %d\n",
			commits, aborts, c.Certifier().Version())
		if slots := c.Certifier().ReplicationSlots(); slots > 0 {
			fmt.Printf("certifier log: %d Paxos slots for %d commits\n", slots, commits)
		}
	}
}
