package repro_test

import (
	"fmt"

	"repro"
)

// ExamplePredictMM predicts multi-master scalability for the paper's
// main workload from table parameters alone.
func ExamplePredictMM() {
	params := repro.NewParams(repro.TPCWShopping())
	for _, n := range []int{1, 8, 16} {
		pred := repro.PredictMM(params, n)
		fmt.Printf("N=%-2d %.0f tps\n", n, pred.Throughput)
	}
	// Output:
	// N=1  28 tps
	// N=8  199 tps
	// N=16 354 tps
}

// ExamplePredictSM shows the single-master design saturating on an
// update-heavy mix: the master executes every update, so adding slaves
// beyond the knee buys nothing.
func ExamplePredictSM() {
	params := repro.NewParams(repro.TPCWOrdering())
	x4 := repro.PredictSM(params, 4).Throughput
	x16 := repro.PredictSM(params, 16).Throughput
	fmt.Printf("4 replicas: %.0f tps\n", x4)
	fmt.Printf("16 replicas: %.0f tps (saturated)\n", x16)
	// Output:
	// 4 replicas: 148 tps
	// 16 replicas: 137 tps (saturated)
}

// ExampleCapacityPlan answers the provisioning question directly: how
// many replicas does a 250 tps target need?
func ExampleCapacityPlan() {
	params := repro.NewParams(repro.TPCWShopping())
	n, pred, ok := repro.CapacityPlan(params, repro.MultiMaster, 250, 16)
	fmt.Printf("reachable=%v with %d replicas (%.0f tps)\n", ok, n, pred.Throughput)
	// Output:
	// reachable=true with 11 replicas (262 tps)
}

// ExampleCheckAssumptions flags workloads outside the model's domain
// (§3.4): here an update-dominated mix.
func ExampleCheckAssumptions() {
	mix := repro.TPCWShopping()
	mix.Pw, mix.Pr = 0.7, 0.3
	rep := repro.CheckAssumptions(repro.NewParams(mix), 8)
	fmt.Println(rep.OK())
	// Output:
	// false
}
